"""The counterexample-guided repair driver (CEGIS loop).

Each round the driver (1) runs a :class:`~repro.verify.base.Verifier` over
the target regions, (2) grows a deduplicating
:class:`~repro.driver.pool.CounterexamplePool` with whatever violations were
found, (3) solves one batched pointwise repair (the PR 1 engine) of the
*original* network against the whole pool, and (4) re-verifies the repaired
network.  Repairing against the full pool from the original network — rather
than chaining incremental repairs — keeps the applied delta minimal-norm
with respect to the buggy network and makes every round's LP a superset of
the last, so progress is monotone.

Counterexamples from the exact verifier carry the interior point of the
linear region they violate; the pool pins each one to that activation
pattern, which makes "repair the pooled vertices" equivalent to "repair the
violated linear regions" (Appendix B of the paper).  With the exact verifier
the loop therefore terminates in a round whose verification report certifies
every region.

``mode="polytope"`` makes that equivalence literal — the driver's
closed-loop analogue of Algorithm 2.  The exact verifier reports each
violating linear region *whole* (a
:class:`~repro.verify.base.RegionCounterexample`: vertex set + interior
point), the pool dedups regions by activation-pattern-aware keys, and every
pooled region expands to one repair point per vertex under the region's
pinned activation pattern.  A certified final round then proves the repaired
network correct on the infinitely many points of every specification
polytope, with all the loop's machinery — engine-sharded decomposition,
partition caching, incremental LP sessions, value-only re-verification,
checkpoint/resume — applying unchanged.

Rounds are bounded by ``max_rounds`` and a wall-clock
:class:`~repro.utils.timing.TimeBudget`; infeasible (or stalled) rounds
escalate to the next layer in the layer schedule; and an optional holdout
set tracks drawdown per round via :mod:`repro.experiments.metrics`.

``incremental=True`` turns the superset property into wall-clock savings:
the LP of round *k* is round *k-1*'s plus the new counterexamples' rows, so
the driver keeps one
:class:`~repro.core.point_repair.IncrementalPointRepairSession` alive per
scheduled layer (append-only rows, warm-started solves), and — because
value-channel repair never moves linear-region boundaries — enables the
exact verifier's value-only fast path, which re-evaluates cached vertex
sets instead of re-decomposing.  With the default scipy/HiGHS backend an
incremental run is byte-identical to a cold one on the differential-test
workloads (narrow ACAS-style value channels); on very wide value channels
BLAS may round the suffix-append and full-pool Jacobian batches differently
in the last bit, leaving the two runs equal to ~1e-15 per LP coefficient
rather than per byte (``bench_polytope_driver`` records which regime a
workload lands in).
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

import repro.obs as obs
from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import IncrementalPointRepairSession, point_repair
from repro.core.result import RepairTiming
from repro.core.specs import PolytopeRepairSpec
from repro.driver.config import DEFAULT_REPAIR_MARGIN, DriverConfig
from repro.driver.pool import CounterexamplePool
from repro.exceptions import RepairError
from repro.experiments.metrics import drawdown as drawdown_metric
from repro.nn.network import Network
from repro.utils.timing import Stopwatch, TimeBudget
from repro.verify.base import VerificationReport, VerificationSpec, Verifier

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine import Engine

__all__ = [
    "DEFAULT_REPAIR_MARGIN",
    "DriverConfig",
    "DriverReport",
    "DriverTiming",
    "RepairDriver",
    "RoundRecord",
]


@dataclass
class DriverTiming:
    """Wall-clock split of a driver run, built on :class:`RepairTiming`.

    ``repair`` accumulates the per-phase breakdown of every repair round
    (LinRegions/Jacobian/LP/other, as in the paper's RQ4 analysis);
    ``verify_seconds`` is the total verification time across rounds; and
    ``other_seconds`` is driver overhead (pool bookkeeping, checkpointing,
    holdout evaluation).
    """

    verify_seconds: float = 0.0
    repair: RepairTiming = field(default_factory=RepairTiming)
    other_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total driver wall-clock time."""
        return self.verify_seconds + self.repair.total_seconds + self.other_seconds

    def as_dict(self) -> dict[str, float]:
        """The split as a flat dictionary (used by benchmark reports)."""
        return {
            "verify": self.verify_seconds,
            **{f"repair_{key}": value for key, value in self.repair.as_dict().items()},
            "other": self.other_seconds,
            "total": self.total_seconds,
        }


@dataclass
class RoundRecord:
    """What happened in one verify→repair round.

    ``seconds`` is the round's verification wall-clock and
    ``repair_seconds`` its repair wall-clock (benchmarks compare per-round
    costs from these).  The last four fields describe the incremental
    machinery: how many LP rows this round appended to the standing repair
    LP (0 on cold rounds, which rebuild from scratch), whether the LP solve
    actually consumed a warm-start handle, the backend's solver iteration
    count, and whether verification took the value-only fast path (cached
    decomposition, batched re-evaluation).
    """

    round_index: int
    regions_certified: int
    regions_violated: int
    regions_unknown: int
    new_counterexamples: int
    pool_size: int
    #: Repair points the pool expands to (== pool_size in point mode; in
    #: polytope mode every pooled region contributes all of its vertices).
    pool_key_points: int = 0
    repair_attempted: bool = False
    repair_feasible: bool | None = None
    layer_index: int | None = None
    delta_linf: float = 0.0
    drawdown: float = float("nan")
    seconds: float = 0.0
    repair_seconds: float = 0.0
    lp_rows_appended: int = 0
    warm_start_used: bool = False
    lp_iterations: int | None = None
    verify_value_only: bool = False
    #: Cumulative counters-only metrics snapshot taken as the round was
    #: emitted (``None`` when telemetry is disabled).  Streamed through
    #: ``on_round`` and the daemon's ``GET /jobs/<id>`` progress documents.
    telemetry: dict | None = None

    def as_dict(self) -> dict:
        """The record as a JSON-ready dictionary."""
        return dict(self.__dict__)


@dataclass
class DriverReport:
    """Outcome of a full driver run.

    ``status`` is one of ``"certified"`` (the final verification pass proved
    every region clean), ``"clean"`` (a sampling verifier found no remaining
    violations — no proof), ``"infeasible"`` (no layer in the schedule
    admits a repair of the pool), ``"stalled"`` (violations remain but the
    verifier found nothing new on any remaining layer),
    ``"budget_exhausted"``, or ``"max_rounds_reached"``.
    """

    status: str
    certified: bool
    network: DecoupledNetwork
    rounds: list[RoundRecord] = field(default_factory=list)
    final_report: VerificationReport | None = None
    pool_size: int = 0
    counterexamples_found: int = 0
    unsatisfied_pool_indices: list[int] = field(default_factory=list)
    timing: DriverTiming = field(default_factory=DriverTiming)
    engine_stats: dict | None = None
    incremental: bool = False
    mode: str = "point"
    #: Full metrics-registry snapshot taken as the run finished (``None``
    #: when telemetry is disabled).
    telemetry: dict | None = None

    @property
    def num_rounds(self) -> int:
        """Number of verify→repair rounds executed."""
        return len(self.rounds)

    @property
    def remaining_violations(self) -> int:
        """Violated regions in the final verification pass (0 when clean)."""
        return self.final_report.num_violated if self.final_report is not None else 0

    @property
    def lp_rows_appended(self) -> int:
        """Total LP rows appended incrementally across all rounds."""
        return sum(record.lp_rows_appended for record in self.rounds)

    @property
    def warm_started_rounds(self) -> int:
        """Rounds whose LP solve consumed a warm-start handle."""
        return sum(record.warm_start_used for record in self.rounds)

    @property
    def value_only_rounds(self) -> int:
        """Rounds whose verification took the value-only fast path."""
        return sum(record.verify_value_only for record in self.rounds)

    @property
    def lp_iterations(self) -> int | None:
        """Total solver iterations across rounds (``None`` if never reported)."""
        counts = [r.lp_iterations for r in self.rounds if r.lp_iterations is not None]
        return sum(counts) if counts else None

    def as_dict(self) -> dict:
        """A JSON-ready summary (no network weights)."""
        return {
            "status": self.status,
            "certified": self.certified,
            "incremental": self.incremental,
            "mode": self.mode,
            "num_rounds": self.num_rounds,
            "pool_size": self.pool_size,
            "counterexamples_found": self.counterexamples_found,
            "remaining_violations": self.remaining_violations,
            "unsatisfied_pool_counterexamples": len(self.unsatisfied_pool_indices),
            "lp_rows_appended": self.lp_rows_appended,
            "warm_started_rounds": self.warm_started_rounds,
            "value_only_rounds": self.value_only_rounds,
            "lp_iterations": self.lp_iterations,
            "final_report": (
                self.final_report.as_dict() if self.final_report is not None else None
            ),
            "rounds": [record.as_dict() for record in self.rounds],
            "timing": self.timing.as_dict(),
            **({"engine": self.engine_stats} if self.engine_stats is not None else {}),
            **({"telemetry": self.telemetry} if self.telemetry is not None else {}),
        }


class RepairDriver:
    """Closed-loop verify → pool → repair → re-verify driver.

    The primary constructor is ``RepairDriver(network, spec, verifier,
    config=DriverConfig(...))``: every *algorithm* knob lives in the frozen,
    JSON-serializable :class:`~repro.driver.config.DriverConfig`, while
    runtime resources (``engine``, ``pool``, ``checkpoint_path``,
    ``holdout``, ``on_round``) stay keyword arguments of the driver itself.
    The historical keyword sprawl (``mode=...``, ``max_rounds=...``, …)
    keeps working as a thin shim that builds the config for you; mixing a
    ``config`` with loose knobs is rejected.

    Parameters
    ----------
    network:
        The buggy network (or DDNN) to repair.
    spec:
        The verification targets: regions plus output constraints.  In
        polytope mode a :class:`~repro.core.specs.PolytopeRepairSpec` is
        accepted directly and adopted as verification targets via
        :meth:`VerificationSpec.from_polytope_spec`.
    mode:
        ``"point"`` (default) pools individual violating vertices —
        closed-loop Algorithm 1.  ``"polytope"`` is closed-loop Algorithm 2:
        the exact verifier reports whole violating *linear regions*
        (:class:`~repro.verify.base.RegionCounterexample`), the pool dedups
        them by activation-pattern-aware keys, and each pooled region
        expands to one repair point per region vertex (pinned to the
        region's interior), so a certified final round proves the repaired
        network correct on every point of every specification polytope.
    verifier:
        The violation-search implementation.  With
        :class:`~repro.verify.exact.SyrennVerifier` the driver terminates
        with a *certified* report; sampling verifiers can only reach
        ``"clean"``.
    layer_schedule:
        Layers to repair, tried in order; an infeasible or stalled round
        escalates to the next entry.  Defaults to every repairable layer
        from the output backwards (the §7.1 heuristic).
    repair_margin:
        Constraint tightening applied when the pool becomes a repair LP, so
        repaired outputs clear the verifier's tolerance strictly.
    max_rounds:
        Hard cap on verify→repair rounds.
    budget_seconds:
        Wall-clock budget (:class:`TimeBudget`); checked before each round.
    holdout:
        Optional ``(inputs, labels)`` pair; when given, each round records
        drawdown of the current repair against the original network.
    checkpoint_path:
        When given, the pool is checkpointed here after every verification
        and reloaded (resume) if the file already exists at start.
    engine:
        Optional :class:`repro.engine.ShardedSyrennEngine`.  When given, it
        is attached to the verifier (if the verifier supports one and has
        none yet) so every round's verification runs through the engine's
        worker pool and partition cache, and the engine's scheduler/cache
        statistics are included in the final :class:`DriverReport`.
    incremental:
        ``True`` switches both halves of the loop onto the incremental fast
        paths.  Repair keeps one
        :class:`~repro.core.point_repair.IncrementalPointRepairSession`
        alive per scheduled layer, appending only the *new*
        counterexamples' constraint rows each round and threading the
        previous round's :class:`~repro.lp.model.WarmStart` into the solve;
        verification (for a verifier exposing a ``value_only`` flag, i.e.
        :class:`~repro.verify.exact.SyrennVerifier`) reuses the previous
        round's decomposition whenever the activation fingerprint is
        unchanged.  With the default (scipy/HiGHS) backend both fast paths
        are byte-identical to a cold run; see ``warm_start``.
    warm_start:
        Whether incremental LP solves consume the previous round's handle
        (only meaningful with ``incremental=True``).  For backends whose
        warm start is *not* exact (``LPBackend.warm_start_is_exact`` is
        ``False``, e.g. the simplex backend's dual-simplex hot start), a
        warm-started solve may return a different — equally optimal —
        vertex of a degenerate optimal face than a cold run would.
    max_new_counterexamples:
        Per-round cap on pool growth.  ``None`` (default) pools everything
        a verification pass found; a small cap rations counterexamples the
        way incremental CEGIS implementations often do, trading more rounds
        for smaller per-round LPs (and giving benchmarks a deterministic
        way to scale round counts).
    norm, backend, delta_bound, batched, sparse:
        Forwarded to :func:`repro.core.point_repair.point_repair`.
    memory_budget:
        Soft cap, in bytes, on the repair data path's resident footprint —
        the single knob of the out-of-core pipeline.  When set, the driver
        (1) creates (and reloads) its counterexample pool with a
        ``max_resident_bytes`` spill budget, so old entries spill to
        atomic npz segments on disk while dedup keys stay resident, and
        (2) encodes repair constraints through the chunked
        :class:`~repro.core.jacobian.JacobianChunkStream` path with a
        matching ``max_chunk_bytes``, so the dense Jacobian block is never
        materialized (rows stream into the LP as CSR blocks, byte-identical
        to the in-memory path).  Each tier gets a quarter of the budget;
        the rest is headroom for the LP itself.  ``None`` (default) keeps
        every path fully in memory, bit-for-bit as before.  A
        caller-supplied ``pool`` is never reconfigured.
    on_round:
        Optional callback invoked with each :class:`RoundRecord` as the
        driver finishes with it (its fields final).  This is the progress
        stream the job daemon relays to polling clients; exceptions from
        the callback propagate and abort the run.
    """

    def __init__(
        self,
        network: Network | DecoupledNetwork,
        spec: VerificationSpec | PolytopeRepairSpec,
        verifier: Verifier,
        *,
        config: DriverConfig | None = None,
        holdout: tuple | None = None,
        checkpoint_path: str | Path | None = None,
        pool: CounterexamplePool | None = None,
        engine: Engine | None = None,
        on_round: Callable[[RoundRecord], None] | None = None,
        **knobs,
    ) -> None:
        if config is None:
            config = DriverConfig(**knobs)  # the back-compat keyword shim
        elif knobs:
            raise RepairError(
                "pass algorithm knobs either via config=... or as keywords, "
                f"not both (got {sorted(knobs)} alongside a config)"
            )
        self.config = config
        if isinstance(spec, PolytopeRepairSpec):
            if config.mode != "polytope":
                raise RepairError('a PolytopeRepairSpec requires mode="polytope"')
            spec = VerificationSpec.from_polytope_spec(spec)
        self.mode = config.mode
        self.base = (
            network.copy()
            if isinstance(network, DecoupledNetwork)
            else DecoupledNetwork.from_network(network)
        )
        self.buggy = network
        self.spec = spec
        self.verifier = verifier
        self.engine = engine
        self.on_round = on_round
        self.layer_schedule = (
            list(config.layer_schedule)
            if config.layer_schedule is not None
            else list(reversed(self.base.repairable_layer_indices()))
        )
        if not self.layer_schedule:
            raise RepairError("the layer schedule is empty")
        self.repair_margin = config.repair_margin
        self.max_rounds = config.max_rounds
        self.budget_seconds = config.budget_seconds
        self.holdout = holdout
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
        self.memory_budget = config.memory_budget
        # A quarter of the budget each for the pool's resident window and
        # for Jacobian chunks; the remaining half is headroom for the LP.
        tier = max(1, config.memory_budget // 4) if config.memory_budget else None
        self.max_chunk_bytes = tier
        if pool is not None:
            self.pool = pool
        elif self.checkpoint_path is not None and self.checkpoint_path.exists():
            self.pool = CounterexamplePool.load(self.checkpoint_path, max_resident_bytes=tier)
        else:
            self.pool = CounterexamplePool(max_resident_bytes=tier)
        self.incremental = config.incremental
        self.warm_start = config.warm_start
        self.max_new_counterexamples = config.max_new_counterexamples
        self.norm = config.norm
        self.backend = config.backend
        self.delta_bound = config.delta_bound
        self.batched = config.batched
        self.sparse = config.sparse
        self._session: IncrementalPointRepairSession | None = None
        # Pool *entries* already encoded into the standing session: in
        # polytope mode one entry expands to several LP points, so the
        # session's own point count cannot identify the new suffix.
        self._session_entries = 0

    # ------------------------------------------------------------------
    def run(self) -> DriverReport:
        """Execute the CEGIS loop and return the final report.

        A driver-level ``engine`` is attached to the verifier for the
        duration of the run only (and only if the verifier supports one and
        has none of its own), so a caller-owned verifier is never left
        mutated.  The reported ``engine_stats`` always describe the engine
        the verification actually ran through.

        An ``incremental`` driver likewise enables the verifier's
        ``value_only`` fast path (when the verifier exposes that flag and
        does not already have it on) for the duration of the run only.

        A ``mode="polytope"`` driver additionally enables the verifier's
        ``region_counterexamples`` granularity (again: only when the
        verifier exposes that flag and had it off), so violations arrive as
        whole linear regions ready for key-point expansion.
        """
        attach = (
            self.engine is not None
            and getattr(self.verifier, "engine", False) is None
        )
        attach_value_only = (
            self.incremental and getattr(self.verifier, "value_only", None) is False
        )
        attach_regions = (
            self.mode == "polytope"
            and getattr(self.verifier, "region_counterexamples", None) is False
        )
        if attach:
            self.verifier.engine = self.engine
        if attach_value_only:
            self.verifier.value_only = True
        if attach_regions:
            self.verifier.region_counterexamples = True
        try:
            with obs.span("driver.run", mode=self.mode, incremental=self.incremental):
                return self._run()
        finally:
            if attach:
                self.verifier.engine = None
            if attach_value_only:
                self.verifier.value_only = False
            if attach_regions:
                self.verifier.region_counterexamples = False

    def _run(self) -> DriverReport:
        budget = TimeBudget(self.budget_seconds)
        watch = Stopwatch()
        timing = DriverTiming()
        rounds: list[RoundRecord] = []
        current = self.base.copy()
        layer_cursor = 0
        status = "max_rounds_reached"
        final_report: VerificationReport | None = None
        counterexamples_found = 0
        # Whether a repair against the current pool has been attempted at the
        # current layer *in this run* — a resumed (or pre-seeded) pool starts
        # with counterexamples nothing was ever repaired against.
        repaired_at_cursor = False
        report_is_stale = False  # a repair was applied after the last verify

        for round_index in range(self.max_rounds):
            if budget.exhausted():
                status = "budget_exhausted"
                break
            with watch.phase("verify"), obs.span("driver.verify", round=round_index):
                report = self.verifier.verify(current, self.spec)
            final_report = report
            report_is_stale = False
            record = RoundRecord(
                round_index=round_index,
                regions_certified=report.num_certified,
                regions_violated=report.num_violated,
                regions_unknown=report.num_unknown,
                new_counterexamples=0,
                pool_size=len(self.pool),
                pool_key_points=self.pool.num_key_points,
                seconds=report.seconds,
                verify_value_only=getattr(report, "value_only", False),
            )
            rounds.append(record)

            if report.num_violated == 0:
                status = "certified" if report.certified else "clean"
                self._emit(record)
                break

            new = self._pool_intake(report.counterexamples)
            counterexamples_found += new
            record.new_counterexamples = new
            record.pool_size = len(self.pool)
            record.pool_key_points = self.pool.num_key_points
            if self.checkpoint_path is not None:
                self.pool.save(self.checkpoint_path)

            if new == 0 and repaired_at_cursor:
                # This layer was already repaired against this exact pool,
                # yet violations remain: it cannot do better.
                layer_cursor += 1
                repaired_at_cursor = False
                if layer_cursor >= len(self.layer_schedule):
                    status = "stalled"
                    self._emit(record)
                    break

            result = None
            while layer_cursor < len(self.layer_schedule):
                layer_index = self.layer_schedule[layer_cursor]
                with obs.span("driver.repair", round=round_index, layer=layer_index):
                    if self.incremental:
                        result = self._incremental_repair(layer_index, record)
                    else:
                        result = point_repair(
                            self.base,
                            layer_index,
                            self.pool.point_spec(margin=self.repair_margin),
                            norm=self.norm,
                            backend=self.backend,
                            delta_bound=self.delta_bound,
                            batched=self.batched,
                            sparse=self.sparse,
                            max_chunk_bytes=self.max_chunk_bytes,
                            engine=self.engine,
                        )
                _accumulate(timing.repair, result.timing)
                record.repair_attempted = True
                record.repair_feasible = result.feasible
                record.layer_index = result.layer_index
                record.repair_seconds += result.timing.total_seconds
                repaired_at_cursor = True
                if result.feasible:
                    break
                layer_cursor += 1
                repaired_at_cursor = False
            if result is None or not result.feasible:
                status = "infeasible"
                self._emit(record)
                break

            current = result.network
            report_is_stale = True
            record.delta_linf = result.delta_linf_norm
            if self.holdout is not None:
                inputs, labels = self.holdout
                record.drawdown = drawdown_metric(self.buggy, current, inputs, labels)
            self._emit(record)

        if report_is_stale:
            # The loop ran out of rounds (or budget) right after a repair:
            # re-verify so the report describes the network actually returned,
            # and upgrade the status if that last repair finished the job.
            with watch.phase("verify"):
                final_report = self.verifier.verify(current, self.spec)
            if final_report.num_violated == 0:
                status = "certified" if final_report.certified else "clean"

        timing.verify_seconds = watch.total("verify")
        timing.other_seconds = max(
            0.0, watch.elapsed() - timing.verify_seconds - timing.repair.total_seconds
        )
        if obs.enabled():
            obs.counter(
                "repro_driver_runs_total",
                "Driver runs completed, by final status.",
                labels=("status", "mode"),
            ).inc(status=status, mode=self.mode)
        return DriverReport(
            status=status,
            certified=final_report.certified if final_report is not None else False,
            network=current,
            rounds=rounds,
            final_report=final_report,
            pool_size=len(self.pool),
            counterexamples_found=counterexamples_found,
            unsatisfied_pool_indices=(
                self.pool.unsatisfied(current) if len(self.pool) else []
            ),
            timing=timing,
            engine_stats=self._engine_stats(),
            incremental=self.incremental,
            mode=self.mode,
            telemetry=obs.snapshot() if obs.enabled() else None,
        )

    def _emit(self, record: RoundRecord) -> None:
        """Hand a finished round record to the ``on_round`` progress callback.

        With telemetry enabled, the record first picks up round counters and
        a cumulative counters-only registry snapshot — the compact time
        dimension polling clients see through ``GET /jobs/<id>``.
        """
        if obs.enabled():
            obs.counter(
                "repro_driver_rounds_total",
                "CEGIS verify→repair rounds completed.",
            ).inc()
            peak = _peak_rss_bytes()
            if peak is not None:
                obs.gauge(
                    "repro_peak_rss_bytes",
                    "Peak resident set size of this process, in bytes "
                    "(monotone over the process lifetime).",
                ).set(peak)
            if record.new_counterexamples:
                obs.counter(
                    "repro_driver_counterexamples_total",
                    "Counterexamples newly admitted to the pool.",
                ).inc(record.new_counterexamples)
            if record.repair_attempted:
                obs.counter(
                    "repro_driver_repairs_total",
                    "Repair attempts, by LP feasibility.",
                    labels=("feasible",),
                ).inc(feasible="true" if record.repair_feasible else "false")
            record.telemetry = obs.snapshot(kinds=("counter",))
        if self.on_round is not None:
            self.on_round(record)

    def _pool_intake(self, counterexamples: list) -> int:
        """Pool a verification pass's counterexamples; returns how many were new.

        With ``max_new_counterexamples`` set, intake stops once that many
        *new* entries were admitted this round — duplicates of already
        pooled counterexamples never count against the cap.
        """
        if self.max_new_counterexamples is None:
            return self.pool.extend(counterexamples)
        new = 0
        for counterexample in counterexamples:
            if self.pool.add(counterexample):
                new += 1
                if new >= self.max_new_counterexamples:
                    break
        return new

    def _incremental_repair(self, layer_index: int, record: RoundRecord):
        """One repair attempt through the standing incremental LP session.

        The session lives for as long as the layer cursor stays put; a layer
        escalation starts a fresh session (a different layer means entirely
        different Jacobians), which then absorbs the whole pool at once.
        Only counterexamples pooled since the session last encoded are
        appended — the pool is insertion-ordered and append-only, so a count
        of encoded pool *entries* identifies the new suffix exactly (the
        session's own point count cannot: in polytope mode one pooled region
        expands to several LP points).
        """
        if self._session is None or self._session.layer_index != layer_index:
            self._session = IncrementalPointRepairSession(
                self.base,
                layer_index,
                norm=self.norm,
                backend=self.backend,
                delta_bound=self.delta_bound,
                sparse=self.sparse,
                warm_start=self.warm_start,
                max_chunk_bytes=self.max_chunk_bytes,
                engine=self.engine,
            )
            self._session_entries = 0
        session = self._session
        if len(self.pool) > self._session_entries:
            appended = session.append_points(
                self.pool.point_spec(
                    margin=self.repair_margin, start=self._session_entries
                )
            )
            self._session_entries = len(self.pool)
            record.lp_rows_appended += appended
        result = session.solve()
        solution = session.last_solution
        record.warm_start_used = bool(solution.warm_start_used)
        record.lp_iterations = solution.iterations
        return result

    def _engine_stats(self) -> dict | None:
        """Stats of the engine verification actually ran through.

        While a run is in flight, a driver-level engine is visible as
        ``verifier.engine``; a verifier that cannot hold an engine means no
        engine was used, so no stats are reported — even if one was passed.
        """
        active = getattr(self.verifier, "engine", None)
        return active.stats() if active is not None else None


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process in bytes (``None`` off-POSIX).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
    monotone over the process lifetime, so out-of-core benchmarks must
    sweep workload sizes in ascending order to attribute peaks.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def _accumulate(total: RepairTiming, part: RepairTiming) -> None:
    total.linregions_seconds += part.linregions_seconds
    total.jacobian_seconds += part.jacobian_seconds
    total.lp_seconds += part.lp_seconds
    total.other_seconds += part.other_seconds
