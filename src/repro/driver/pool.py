"""The deduplicating counterexample pool of the CEGIS repair driver.

Every verification round can return counterexamples the pool has already
seen (the exact verifier reports every violating vertex of every linear
region, and vertices are shared between adjacent regions).  The pool keys
each counterexample by its rounded point, rounded activation point, and a
digest of its constraint, so re-adding an old counterexample is a no-op and
the driver can tell "the verifier found something new" from "the verifier is
stuck".

Region counterexamples (:class:`~repro.verify.base.RegionCounterexample`,
produced by the exact verifier in the driver's polytope mode) are keyed by
their *activation pattern* instead: the region's interior point plus its
vertex set and constraint — never the worst-violating vertex or its margin,
both of which move between rounds as the value channel is repaired while the
region itself stays put.  A re-found violating region is therefore always a
duplicate, which is what keeps the driver's stall detection sound.

Key material is normalized before hashing — coerced to contiguous
``float64`` and rounded with ``-0.0`` collapsed onto ``0.0`` — because the
raw bytes of ``-0.0`` differ from ``0.0`` and ``float32`` bytes never match
``float64`` bytes: without normalization, equal counterexamples from (say) a
``float32`` dataset sweep would evade dedup forever and fool the driver into
thinking the verifier keeps finding something new.

**Disk-spill tier.**  With ``max_resident_bytes`` set, the pool keeps only a
bounded suffix of entries in memory: when the resident window exceeds the
budget, the oldest resident run is written to a segment file (the same
per-entry npz layout the checkpoints use) and the in-memory slots are
dropped.  Dedup keys and per-entry metadata (margins, key-point counts)
always stay resident, so :meth:`add`, :meth:`worst_margin` and
``num_key_points`` never touch disk; consumers that need entry *contents*
(:meth:`point_spec`, :meth:`unsatisfied`, :meth:`save`) stream them back in
insertion order through a one-segment read cache.  Million-point pools thus
cost O(keys) RAM, not O(entries).

The pool also persists itself through :mod:`repro.utils.serialization` so an
interrupted driver run (CI timeout, budget exhaustion) resumes with every
counterexample it had already paid verification time for.  Checkpoints are
written atomically (temp file + ``os.replace``), so a concurrent reader or
a mid-save kill can never observe a torn archive.
"""

from __future__ import annotations

import bisect
import hashlib
import shutil
import tempfile
import weakref
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.polytope_repair import region_key_points
from repro.core.specs import PointRepairSpec
from repro.polytope.hpolytope import HPolytope
from repro.utils.serialization import load_arrays, save_arrays_atomic
from repro.verify.base import Counterexample, RegionCounterexample


def _pack_entry(arrays: dict, index: int, counterexample: Counterexample) -> None:
    """Write one counterexample into an npz mapping at slot ``index``.

    Region counterexamples additionally carry their vertex array; the
    presence of ``vertices_i`` in the archive is what marks entry ``i`` as a
    region on load, so checkpoints written before region support load
    unchanged.
    """
    arrays[f"point_{index}"] = counterexample.point
    arrays[f"activation_{index}"] = counterexample.resolved_activation_point()
    arrays[f"constraint_a_{index}"] = counterexample.constraint.a
    arrays[f"constraint_b_{index}"] = counterexample.constraint.b
    arrays[f"meta_{index}"] = np.array(
        [counterexample.margin, float(counterexample.region_index)]
    )
    if isinstance(counterexample, RegionCounterexample):
        arrays[f"vertices_{index}"] = counterexample.vertices


def _unpack_entry(arrays: dict, index: int) -> Counterexample:
    """Invert :func:`_pack_entry` for slot ``index``."""
    margin, region_index = arrays[f"meta_{index}"]
    constraint = HPolytope(
        arrays[f"constraint_a_{index}"], arrays[f"constraint_b_{index}"]
    )
    if f"vertices_{index}" in arrays:
        return RegionCounterexample(
            point=arrays[f"point_{index}"],
            constraint=constraint,
            margin=float(margin),
            region_index=int(region_index),
            activation_point=arrays[f"activation_{index}"],
            vertices=arrays[f"vertices_{index}"],
        )
    return Counterexample(
        point=arrays[f"point_{index}"],
        constraint=constraint,
        margin=float(margin),
        region_index=int(region_index),
        activation_point=arrays[f"activation_{index}"],
    )


def _entry_nbytes(counterexample: Counterexample) -> int:
    """Approximate resident footprint of one entry's array payloads."""
    nbytes = (
        counterexample.point.nbytes
        + counterexample.resolved_activation_point().nbytes
        + counterexample.constraint.a.nbytes
        + counterexample.constraint.b.nbytes
    )
    if isinstance(counterexample, RegionCounterexample):
        nbytes += counterexample.vertices.nbytes
    return int(nbytes)


class CounterexamplePool:
    """An insertion-ordered, deduplicating set of counterexamples.

    Parameters
    ----------
    decimals:
        Rounding applied to dedup-key material.
    max_resident_bytes:
        ``None`` (default) keeps every entry in memory — the historical
        behavior.  A byte budget enables the disk-spill tier described in
        the module docstring; dedup keys and per-entry metadata always stay
        resident regardless.
    spill_dir:
        Directory for spill segment files.  Defaults to a private temporary
        directory that lives as long as the pool object.
    """

    def __init__(
        self,
        decimals: int = 9,
        max_resident_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        self.decimals = int(decimals)
        if max_resident_bytes is not None:
            max_resident_bytes = int(max_resident_bytes)
            if max_resident_bytes < 1:
                raise ValueError("max_resident_bytes must be positive (or None)")
        self.max_resident_bytes = max_resident_bytes
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._spill_cleanup: weakref.finalize | None = None
        # Entry slots: a spilled entry's slot holds None; its contents live
        # in exactly one segment file.  Metadata lists stay fully resident.
        self._entries: list[Counterexample | None] = []
        self._keys: set[bytes] = set()
        self._margins: list[float] = []
        self._key_counts: list[int] = []
        self._entry_bytes: list[int] = []
        self._resident_bytes = 0
        self._resident_start = 0
        # Spilled runs, in order: (start, stop, path) with stop == next
        # segment's start; _segment_starts mirrors the starts for bisect.
        self._segments: list[tuple[int, int, Path]] = []
        self._segment_starts: list[int] = []
        self._segment_cache: tuple[Path, dict] | None = None
        self.spilled_entries = 0

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def add(self, counterexample: Counterexample) -> bool:
        """Add one counterexample; returns ``True`` if it was new."""
        key = self._key(counterexample)
        if key in self._keys:
            return False
        self._keys.add(key)
        self._entries.append(counterexample)
        self._margins.append(float(counterexample.margin))
        self._key_counts.append(int(counterexample.key_points().shape[0]))
        nbytes = _entry_nbytes(counterexample)
        self._entry_bytes.append(nbytes)
        self._resident_bytes += nbytes
        self._maybe_spill()
        return True

    def extend(self, counterexamples: list[Counterexample]) -> int:
        """Add many counterexamples; returns how many were new."""
        return sum(self.add(counterexample) for counterexample in counterexamples)

    def _normalized(self, array: np.ndarray) -> np.ndarray:
        """Key material for one array: contiguous float64, rounded, no ``-0.0``.

        Rounding can itself produce ``-0.0`` (``np.round(-1e-12, 9)`` does),
        so the ``+ 0.0`` — which maps ``-0.0`` to ``+0.0`` under IEEE-754 —
        is applied *after* rounding, covering both a literal ``-0.0`` input
        and one minted by the rounding step.
        """
        rounded = np.round(np.asarray(array, dtype=np.float64), self.decimals)
        return np.ascontiguousarray(rounded + 0.0)

    def _key(self, counterexample: Counterexample) -> bytes:
        digest = hashlib.sha256()
        if isinstance(counterexample, RegionCounterexample):
            # Activation-pattern-aware key: the interior point identifies the
            # linear region (its activation pattern), and the vertex set +
            # constraint pin the geometry and obligation.  The worst vertex
            # and margin are deliberately excluded — they change across
            # repair rounds while the region does not.
            digest.update(b"region:")
            digest.update(self._normalized(counterexample.resolved_activation_point()).tobytes())
            digest.update(self._normalized(counterexample.vertices).tobytes())
        else:
            digest.update(b"point:")
            digest.update(self._normalized(counterexample.point).tobytes())
            digest.update(self._normalized(counterexample.resolved_activation_point()).tobytes())
        digest.update(np.ascontiguousarray(counterexample.constraint.a).tobytes())
        digest.update(np.ascontiguousarray(counterexample.constraint.b).tobytes())
        return digest.digest()

    # ------------------------------------------------------------------
    # Spill tier
    # ------------------------------------------------------------------
    def _spill_path(self, segment_index: int) -> Path:
        if self._spill_dir is None:
            # A plain mkdtemp + weakref finalizer (not TemporaryDirectory,
            # whose implicit-cleanup finalizer raises a ResourceWarning when
            # the pool is simply garbage collected).
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-pool-"))
            self._spill_cleanup = weakref.finalize(
                self, shutil.rmtree, str(self._spill_dir), ignore_errors=True
            )
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir / f"segment_{segment_index:05d}.npz"

    def _maybe_spill(self) -> None:
        """Spill the oldest resident run if the window exceeds its budget.

        The run is sized to bring residency down to half the budget (so
        spills amortize instead of triggering per-add), but always leaves
        the newest entry resident — the driver touches it immediately.
        """
        if self.max_resident_bytes is None:
            return
        if self._resident_bytes <= self.max_resident_bytes:
            return
        start = self._resident_start
        stop = start
        freed = 0
        target = self._resident_bytes - self.max_resident_bytes // 2
        while stop < len(self._entries) - 1 and freed < target:
            freed += self._entry_bytes[stop]
            stop += 1
        if stop == start:
            return
        path = self._spill_path(len(self._segments))
        arrays: dict[str, np.ndarray] = {"start": np.array([start]), "count": np.array([stop - start])}
        for slot, index in enumerate(range(start, stop)):
            _pack_entry(arrays, slot, self._entries[index])
        save_arrays_atomic(path, arrays)
        for index in range(start, stop):
            self._entries[index] = None
        self._segments.append((start, stop, path))
        self._segment_starts.append(start)
        self._resident_start = stop
        self._resident_bytes -= freed
        self.spilled_entries += stop - start
        if obs.enabled():
            obs.counter(
                "repro_pool_spilled_entries_total",
                "Counterexample-pool entries spilled to disk segments.",
            ).inc(stop - start)

    def _load_segment(self, segment: tuple[int, int, Path]) -> dict:
        if self._segment_cache is not None and self._segment_cache[0] == segment[2]:
            return self._segment_cache[1]
        arrays = load_arrays(segment[2])
        self._segment_cache = (segment[2], arrays)
        return arrays

    def entry(self, index: int) -> Counterexample:
        """The counterexample at ``index``, loading its spill segment if needed."""
        resident = self._entries[index]
        if resident is not None:
            return resident
        slot = bisect.bisect_right(self._segment_starts, index) - 1
        segment = self._segments[slot]
        arrays = self._load_segment(segment)
        return _unpack_entry(arrays, index - segment[0])

    def iter_entries(self, start: int = 0):
        """Iterate entries ``[start:]`` in insertion order, spill-aware.

        Sequential access loads each spill segment at most once thanks to
        the one-segment read cache.
        """
        for index in range(start, len(self._entries)):
            yield self.entry(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def counterexamples(self) -> list[Counterexample]:
        """The pooled counterexamples, in insertion order (materializes spills)."""
        return list(self.iter_entries())

    @property
    def num_key_points(self) -> int:
        """Total repair points the pool expands to (regions count all vertices)."""
        return sum(self._key_counts)

    @property
    def worst_margin(self) -> float:
        """The largest violation margin in the pool (-inf when empty)."""
        return max(self._margins, default=float("-inf"))

    @property
    def resident_bytes(self) -> int:
        """Approximate bytes of entry payloads currently held in memory."""
        return self._resident_bytes

    # ------------------------------------------------------------------
    # Repair interface
    # ------------------------------------------------------------------
    def point_spec(self, margin: float = 0.0, start: int = 0) -> PointRepairSpec:
        """The pool (from entry index ``start``) as a pointwise repair spec.

        Point counterexamples contribute one repair point each; region
        counterexamples expand through
        :func:`~repro.core.polytope_repair.region_key_points` into one repair
        point per region vertex, every one pinned to the region's interior
        point — exactly the rows Algorithm 2's ``reduce_to_key_points`` would
        emit for those regions, in the same order.

        ``margin`` tightens every constraint (``b → b - margin``) so the
        repaired outputs land strictly inside their polytopes and survive
        re-verification under a stricter-than-LP-solver tolerance.
        ``start`` slices off an already-encoded prefix of pool *entries*: the
        incremental repair driver appends each round only the counterexamples
        pooled since the previous round (the pool is insertion-ordered and
        entries are never removed, so a prefix count identifies them
        exactly).
        """
        if not 0 <= start <= len(self._entries):
            raise ValueError(
                f"start index {start} outside pool of {len(self._entries)}"
            )
        if start == len(self._entries):
            raise ValueError("cannot build a repair spec from an empty pool slice")
        points: list[np.ndarray] = []
        activation_points: list[np.ndarray] = []
        constraints: list[HPolytope] = []
        for counterexample in self.iter_entries(start):
            tightened = HPolytope(
                counterexample.constraint.a, counterexample.constraint.b - margin
            )
            entry_points, entry_activations, entry_constraints = region_key_points(
                counterexample.key_points(),
                counterexample.resolved_activation_point(),
                tightened,
            )
            points.extend(entry_points)
            activation_points.extend(entry_activations)
            constraints.extend(entry_constraints)
        return PointRepairSpec(
            points=np.array(points),
            constraints=constraints,
            activation_points=np.array(activation_points),
        )

    def unsatisfied(
        self, network, tolerance: float = 1e-6, chunk_points: int = 1024
    ) -> list[int]:
        """Indices of pooled counterexamples ``network`` still violates.

        A region counterexample counts as unsatisfied if *any* of its key
        points violates its constraint.  This is the driver's differential
        check: after a feasible repair, every pooled counterexample must be
        satisfied (the LP guarantees it), so a non-empty result flags a
        numerical or encoding bug.

        Key points are evaluated in batches of up to ``chunk_points`` rows
        (one stacked forward pass each) rather than one ``compute`` call per
        point, which is what keeps this check cheap on 10^5-row pools.
        """
        from repro.core.ddnn import DecoupledNetwork

        decoupled = isinstance(network, DecoupledNetwork)
        batch_points: list[np.ndarray] = []
        batch_activations: list[np.ndarray] = []
        batch_owner: list[tuple[int, HPolytope]] = []
        unsatisfied_indices: set[int] = set()

        def flush() -> None:
            if not batch_points:
                return
            stacked = np.vstack(batch_points)
            if decoupled:
                outputs = np.atleast_2d(
                    network.compute(stacked, np.vstack(batch_activations))
                )
            else:
                outputs = np.atleast_2d(network.compute(stacked))
            for row, (owner, constraint) in enumerate(batch_owner):
                if owner in unsatisfied_indices:
                    continue
                if constraint.violation(outputs[row]) > tolerance:
                    unsatisfied_indices.add(owner)
            batch_points.clear()
            batch_activations.clear()
            batch_owner.clear()

        for index, counterexample in enumerate(self.iter_entries()):
            activation = counterexample.resolved_activation_point()
            for point in counterexample.key_points():
                batch_points.append(np.atleast_1d(point))
                batch_activations.append(np.atleast_1d(activation))
                batch_owner.append((index, counterexample.constraint))
                if len(batch_points) >= chunk_points:
                    flush()
        flush()
        return sorted(unsatisfied_indices)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Checkpoint the pool to an ``.npz`` file, atomically.

        The archive is written to a temp file and moved into place with
        ``os.replace``, so a reader racing the save (or a kill between
        write and rename) observes either the previous complete checkpoint
        or the new one — never a torn file.  Spilled entries are streamed
        back from their segments into the archive.
        """
        arrays: dict[str, np.ndarray] = {
            "decimals": np.array([self.decimals]),
            "count": np.array([len(self._entries)]),
        }
        for index, counterexample in enumerate(self.iter_entries()):
            _pack_entry(arrays, index, counterexample)
        save_arrays_atomic(Path(path), arrays)

    @classmethod
    def load(
        cls,
        path: str | Path,
        max_resident_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> "CounterexamplePool":
        """Restore a pool checkpointed by :meth:`save`.

        ``max_resident_bytes``/``spill_dir`` configure the restored pool's
        spill tier; entries past the budget spill during the reload itself,
        so resuming a million-point checkpoint never holds it fully in RAM.
        """
        arrays = load_arrays(Path(path))
        pool = cls(
            decimals=int(arrays["decimals"][0]),
            max_resident_bytes=max_resident_bytes,
            spill_dir=spill_dir,
        )
        for index in range(int(arrays["count"][0])):
            pool.add(_unpack_entry(arrays, index))
        return pool
