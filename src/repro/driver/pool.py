"""The deduplicating counterexample pool of the CEGIS repair driver.

Every verification round can return counterexamples the pool has already
seen (the exact verifier reports every violating vertex of every linear
region, and vertices are shared between adjacent regions).  The pool keys
each counterexample by its rounded point, rounded activation point, and a
digest of its constraint, so re-adding an old counterexample is a no-op and
the driver can tell "the verifier found something new" from "the verifier is
stuck".

Region counterexamples (:class:`~repro.verify.base.RegionCounterexample`,
produced by the exact verifier in the driver's polytope mode) are keyed by
their *activation pattern* instead: the region's interior point plus its
vertex set and constraint — never the worst-violating vertex or its margin,
both of which move between rounds as the value channel is repaired while the
region itself stays put.  A re-found violating region is therefore always a
duplicate, which is what keeps the driver's stall detection sound.

Key material is normalized before hashing — coerced to contiguous
``float64`` and rounded with ``-0.0`` collapsed onto ``0.0`` — because the
raw bytes of ``-0.0`` differ from ``0.0`` and ``float32`` bytes never match
``float64`` bytes: without normalization, equal counterexamples from (say) a
``float32`` dataset sweep would evade dedup forever and fool the driver into
thinking the verifier keeps finding something new.

The pool also persists itself through :mod:`repro.utils.serialization` so an
interrupted driver run (CI timeout, budget exhaustion) resumes with every
counterexample it had already paid verification time for.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.polytope_repair import region_key_points
from repro.core.specs import PointRepairSpec
from repro.polytope.hpolytope import HPolytope
from repro.utils.serialization import load_arrays, save_arrays
from repro.verify.base import Counterexample, RegionCounterexample


class CounterexamplePool:
    """An insertion-ordered, deduplicating set of counterexamples."""

    def __init__(self, decimals: int = 9) -> None:
        self.decimals = int(decimals)
        self._counterexamples: list[Counterexample] = []
        self._keys: set[bytes] = set()

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def add(self, counterexample: Counterexample) -> bool:
        """Add one counterexample; returns ``True`` if it was new."""
        key = self._key(counterexample)
        if key in self._keys:
            return False
        self._keys.add(key)
        self._counterexamples.append(counterexample)
        return True

    def extend(self, counterexamples: list[Counterexample]) -> int:
        """Add many counterexamples; returns how many were new."""
        return sum(self.add(counterexample) for counterexample in counterexamples)

    def _normalized(self, array: np.ndarray) -> np.ndarray:
        """Key material for one array: contiguous float64, rounded, no ``-0.0``.

        Rounding can itself produce ``-0.0`` (``np.round(-1e-12, 9)`` does),
        so the ``+ 0.0`` — which maps ``-0.0`` to ``+0.0`` under IEEE-754 —
        is applied *after* rounding, covering both a literal ``-0.0`` input
        and one minted by the rounding step.
        """
        rounded = np.round(np.asarray(array, dtype=np.float64), self.decimals)
        return np.ascontiguousarray(rounded + 0.0)

    def _key(self, counterexample: Counterexample) -> bytes:
        digest = hashlib.sha256()
        if isinstance(counterexample, RegionCounterexample):
            # Activation-pattern-aware key: the interior point identifies the
            # linear region (its activation pattern), and the vertex set +
            # constraint pin the geometry and obligation.  The worst vertex
            # and margin are deliberately excluded — they change across
            # repair rounds while the region does not.
            digest.update(b"region:")
            digest.update(self._normalized(counterexample.resolved_activation_point()).tobytes())
            digest.update(self._normalized(counterexample.vertices).tobytes())
        else:
            digest.update(b"point:")
            digest.update(self._normalized(counterexample.point).tobytes())
            digest.update(self._normalized(counterexample.resolved_activation_point()).tobytes())
        digest.update(np.ascontiguousarray(counterexample.constraint.a).tobytes())
        digest.update(np.ascontiguousarray(counterexample.constraint.b).tobytes())
        return digest.digest()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._counterexamples)

    @property
    def counterexamples(self) -> list[Counterexample]:
        """The pooled counterexamples, in insertion order."""
        return list(self._counterexamples)

    @property
    def num_key_points(self) -> int:
        """Total repair points the pool expands to (regions count all vertices)."""
        return sum(
            counterexample.key_points().shape[0]
            for counterexample in self._counterexamples
        )

    @property
    def worst_margin(self) -> float:
        """The largest violation margin in the pool (-inf when empty)."""
        return max(
            (counterexample.margin for counterexample in self._counterexamples),
            default=float("-inf"),
        )

    # ------------------------------------------------------------------
    # Repair interface
    # ------------------------------------------------------------------
    def point_spec(self, margin: float = 0.0, start: int = 0) -> PointRepairSpec:
        """The pool (from entry index ``start``) as a pointwise repair spec.

        Point counterexamples contribute one repair point each; region
        counterexamples expand through
        :func:`~repro.core.polytope_repair.region_key_points` into one repair
        point per region vertex, every one pinned to the region's interior
        point — exactly the rows Algorithm 2's ``reduce_to_key_points`` would
        emit for those regions, in the same order.

        ``margin`` tightens every constraint (``b → b - margin``) so the
        repaired outputs land strictly inside their polytopes and survive
        re-verification under a stricter-than-LP-solver tolerance.
        ``start`` slices off an already-encoded prefix of pool *entries*: the
        incremental repair driver appends each round only the counterexamples
        pooled since the previous round (the pool is insertion-ordered and
        entries are never removed, so a prefix count identifies them
        exactly).
        """
        if not 0 <= start <= len(self._counterexamples):
            raise ValueError(
                f"start index {start} outside pool of {len(self._counterexamples)}"
            )
        selected = self._counterexamples[start:]
        if not selected:
            raise ValueError("cannot build a repair spec from an empty pool slice")
        points: list[np.ndarray] = []
        activation_points: list[np.ndarray] = []
        constraints: list[HPolytope] = []
        for counterexample in selected:
            tightened = HPolytope(
                counterexample.constraint.a, counterexample.constraint.b - margin
            )
            entry_points, entry_activations, entry_constraints = region_key_points(
                counterexample.key_points(),
                counterexample.resolved_activation_point(),
                tightened,
            )
            points.extend(entry_points)
            activation_points.extend(entry_activations)
            constraints.extend(entry_constraints)
        return PointRepairSpec(
            points=np.array(points),
            constraints=constraints,
            activation_points=np.array(activation_points),
        )

    def unsatisfied(self, network, tolerance: float = 1e-6) -> list[int]:
        """Indices of pooled counterexamples ``network`` still violates.

        A region counterexample counts as unsatisfied if *any* of its key
        points violates its constraint.  This is the driver's differential
        check: after a feasible repair, every pooled counterexample must be
        satisfied (the LP guarantees it), so a non-empty result flags a
        numerical or encoding bug.
        """
        indices = []
        for index, counterexample in enumerate(self._counterexamples):
            activation = counterexample.resolved_activation_point()
            for point in counterexample.key_points():
                try:
                    output = network.compute(point, activation)
                except TypeError:  # a plain Network: no activation channel
                    output = network.compute(point)
                if counterexample.constraint.violation(np.asarray(output)) > tolerance:
                    indices.append(index)
                    break
        return indices

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Checkpoint the pool to an ``.npz`` file.

        Region counterexamples additionally carry their vertex array; the
        presence of ``vertices_i`` in the archive is what marks entry ``i``
        as a region on load, so checkpoints written before region support
        load unchanged.
        """
        arrays: dict[str, np.ndarray] = {
            "decimals": np.array([self.decimals]),
            "count": np.array([len(self._counterexamples)]),
        }
        for index, counterexample in enumerate(self._counterexamples):
            arrays[f"point_{index}"] = counterexample.point
            arrays[f"activation_{index}"] = counterexample.resolved_activation_point()
            arrays[f"constraint_a_{index}"] = counterexample.constraint.a
            arrays[f"constraint_b_{index}"] = counterexample.constraint.b
            arrays[f"meta_{index}"] = np.array(
                [counterexample.margin, float(counterexample.region_index)]
            )
            if isinstance(counterexample, RegionCounterexample):
                arrays[f"vertices_{index}"] = counterexample.vertices
        save_arrays(Path(path), arrays)

    @classmethod
    def load(cls, path: str | Path) -> "CounterexamplePool":
        """Restore a pool checkpointed by :meth:`save`."""
        arrays = load_arrays(Path(path))
        pool = cls(decimals=int(arrays["decimals"][0]))
        for index in range(int(arrays["count"][0])):
            margin, region_index = arrays[f"meta_{index}"]
            constraint = HPolytope(
                arrays[f"constraint_a_{index}"], arrays[f"constraint_b_{index}"]
            )
            if f"vertices_{index}" in arrays:
                pool.add(
                    RegionCounterexample(
                        point=arrays[f"point_{index}"],
                        constraint=constraint,
                        margin=float(margin),
                        region_index=int(region_index),
                        activation_point=arrays[f"activation_{index}"],
                        vertices=arrays[f"vertices_{index}"],
                    )
                )
            else:
                pool.add(
                    Counterexample(
                        point=arrays[f"point_{index}"],
                        constraint=constraint,
                        margin=float(margin),
                        region_index=int(region_index),
                        activation_point=arrays[f"activation_{index}"],
                    )
                )
        return pool
