"""The deduplicating counterexample pool of the CEGIS repair driver.

Every verification round can return counterexamples the pool has already
seen (the exact verifier reports every violating vertex of every linear
region, and vertices are shared between adjacent regions).  The pool keys
each counterexample by its rounded point, rounded activation point, and a
digest of its constraint, so re-adding an old counterexample is a no-op and
the driver can tell "the verifier found something new" from "the verifier is
stuck".

The pool also persists itself through :mod:`repro.utils.serialization` so an
interrupted driver run (CI timeout, budget exhaustion) resumes with every
counterexample it had already paid verification time for.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.specs import PointRepairSpec
from repro.polytope.hpolytope import HPolytope
from repro.utils.serialization import load_arrays, save_arrays
from repro.verify.base import Counterexample


class CounterexamplePool:
    """An insertion-ordered, deduplicating set of counterexamples."""

    def __init__(self, decimals: int = 9) -> None:
        self.decimals = int(decimals)
        self._counterexamples: list[Counterexample] = []
        self._keys: set[bytes] = set()

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def add(self, counterexample: Counterexample) -> bool:
        """Add one counterexample; returns ``True`` if it was new."""
        key = self._key(counterexample)
        if key in self._keys:
            return False
        self._keys.add(key)
        self._counterexamples.append(counterexample)
        return True

    def extend(self, counterexamples: list[Counterexample]) -> int:
        """Add many counterexamples; returns how many were new."""
        return sum(self.add(counterexample) for counterexample in counterexamples)

    def _key(self, counterexample: Counterexample) -> bytes:
        digest = hashlib.sha256()
        digest.update(np.round(counterexample.point, self.decimals).tobytes())
        digest.update(
            np.round(counterexample.resolved_activation_point(), self.decimals).tobytes()
        )
        digest.update(np.ascontiguousarray(counterexample.constraint.a).tobytes())
        digest.update(np.ascontiguousarray(counterexample.constraint.b).tobytes())
        return digest.digest()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._counterexamples)

    @property
    def counterexamples(self) -> list[Counterexample]:
        """The pooled counterexamples, in insertion order."""
        return list(self._counterexamples)

    @property
    def worst_margin(self) -> float:
        """The largest violation margin in the pool (-inf when empty)."""
        return max(
            (counterexample.margin for counterexample in self._counterexamples),
            default=float("-inf"),
        )

    # ------------------------------------------------------------------
    # Repair interface
    # ------------------------------------------------------------------
    def point_spec(self, margin: float = 0.0, start: int = 0) -> PointRepairSpec:
        """The pool (from index ``start``) as a pointwise repair specification.

        ``margin`` tightens every constraint (``b → b - margin``) so the
        repaired outputs land strictly inside their polytopes and survive
        re-verification under a stricter-than-LP-solver tolerance.
        ``start`` slices off an already-encoded prefix: the incremental
        repair driver appends each round only the counterexamples pooled
        since the previous round (the pool is insertion-ordered and entries
        are never removed, so a prefix count identifies them exactly).
        """
        if not 0 <= start <= len(self._counterexamples):
            raise ValueError(
                f"start index {start} outside pool of {len(self._counterexamples)}"
            )
        selected = self._counterexamples[start:]
        if not selected:
            raise ValueError("cannot build a repair spec from an empty pool slice")
        points = np.array([c.point for c in selected])
        activation_points = np.array(
            [c.resolved_activation_point() for c in selected]
        )
        constraints = [
            HPolytope(c.constraint.a, c.constraint.b - margin) for c in selected
        ]
        return PointRepairSpec(
            points=points, constraints=constraints, activation_points=activation_points
        )

    def unsatisfied(self, network, tolerance: float = 1e-6) -> list[int]:
        """Indices of pooled counterexamples ``network`` still violates.

        This is the driver's differential check: after a feasible repair,
        every pooled counterexample must be satisfied (the LP guarantees it),
        so a non-empty result flags a numerical or encoding bug.
        """
        indices = []
        for index, counterexample in enumerate(self._counterexamples):
            try:
                output = network.compute(
                    counterexample.point, counterexample.resolved_activation_point()
                )
            except TypeError:  # a plain Network: no activation channel
                output = network.compute(counterexample.point)
            if counterexample.constraint.violation(np.asarray(output)) > tolerance:
                indices.append(index)
        return indices

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Checkpoint the pool to an ``.npz`` file."""
        arrays: dict[str, np.ndarray] = {
            "decimals": np.array([self.decimals]),
            "count": np.array([len(self._counterexamples)]),
        }
        for index, counterexample in enumerate(self._counterexamples):
            arrays[f"point_{index}"] = counterexample.point
            arrays[f"activation_{index}"] = counterexample.resolved_activation_point()
            arrays[f"constraint_a_{index}"] = counterexample.constraint.a
            arrays[f"constraint_b_{index}"] = counterexample.constraint.b
            arrays[f"meta_{index}"] = np.array(
                [counterexample.margin, float(counterexample.region_index)]
            )
        save_arrays(Path(path), arrays)

    @classmethod
    def load(cls, path: str | Path) -> "CounterexamplePool":
        """Restore a pool checkpointed by :meth:`save`."""
        arrays = load_arrays(Path(path))
        pool = cls(decimals=int(arrays["decimals"][0]))
        for index in range(int(arrays["count"][0])):
            margin, region_index = arrays[f"meta_{index}"]
            pool.add(
                Counterexample(
                    point=arrays[f"point_{index}"],
                    constraint=HPolytope(
                        arrays[f"constraint_a_{index}"], arrays[f"constraint_b_{index}"]
                    ),
                    margin=float(margin),
                    region_index=int(region_index),
                    activation_point=arrays[f"activation_{index}"],
                )
            )
        return pool
