"""The declarative, serializable configuration of a repair-driver run.

:class:`DriverConfig` captures every *algorithm* knob of
:class:`~repro.driver.driver.RepairDriver` — mode, layer schedule, margins,
budgets, the incremental/warm-start/batched/sparse switches, the LP backend
— as one frozen dataclass that round-trips through JSON.  Runtime resources
(the network, the spec, the verifier, an engine, a pool, a checkpoint path,
a holdout set) deliberately stay out: a config describes *how* to run a
repair, not *what* to repair, which is what lets the same dictionary travel
from a client, through the job daemon's JSON API, into an in-process driver
— and lets a driver run be reproduced from nothing but the job record.

The dataclass validates on construction (the same checks the driver's old
keyword sprawl applied), so a malformed job fails at decode time with a
:class:`~repro.exceptions.RepairError` rather than rounds later.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

from repro.exceptions import RepairError

#: How much every pooled constraint is tightened when building the repair LP,
#: so repaired outputs survive re-verification strictly.
DEFAULT_REPAIR_MARGIN = 1e-6


@dataclass(frozen=True)
class DriverConfig:
    """Every algorithm knob of a CEGIS driver run, JSON-serializable.

    Parameters mirror :class:`~repro.driver.driver.RepairDriver` (see its
    docstring for semantics).  ``layer_schedule`` is stored as a tuple (the
    dataclass is frozen and hashable); ``None`` means "derive the §7.1
    default from the network" at driver-construction time.
    """

    mode: str = "point"
    layer_schedule: tuple[int, ...] | None = None
    repair_margin: float = DEFAULT_REPAIR_MARGIN
    max_rounds: int = 10
    budget_seconds: float | None = None
    incremental: bool = False
    warm_start: bool = True
    max_new_counterexamples: int | None = None
    norm: str = "linf"
    backend: str | None = None
    delta_bound: float | None = None
    batched: bool = True
    sparse: bool | None = None
    memory_budget: int | None = None

    def __post_init__(self) -> None:
        # Normalize before validating so a config built from JSON (lists,
        # ints-as-floats) is indistinguishable from one built in-process.
        if self.layer_schedule is not None:
            object.__setattr__(
                self, "layer_schedule", tuple(int(index) for index in self.layer_schedule)
            )
        object.__setattr__(self, "repair_margin", float(self.repair_margin))
        object.__setattr__(self, "max_rounds", int(self.max_rounds))
        if self.budget_seconds is not None:
            object.__setattr__(self, "budget_seconds", float(self.budget_seconds))
        if self.delta_bound is not None:
            object.__setattr__(self, "delta_bound", float(self.delta_bound))
        if self.max_new_counterexamples is not None:
            object.__setattr__(
                self, "max_new_counterexamples", int(self.max_new_counterexamples)
            )
        object.__setattr__(self, "incremental", bool(self.incremental))
        object.__setattr__(self, "warm_start", bool(self.warm_start))
        object.__setattr__(self, "batched", bool(self.batched))
        if self.sparse is not None:
            object.__setattr__(self, "sparse", bool(self.sparse))
        if self.memory_budget is not None:
            object.__setattr__(self, "memory_budget", int(self.memory_budget))

        if self.mode not in ("point", "polytope"):
            raise RepairError(f'mode must be "point" or "polytope", got {self.mode!r}')
        if self.max_rounds < 1:
            raise RepairError("the driver needs at least one round")
        if self.incremental and not self.batched:
            raise RepairError("incremental mode requires the batched repair engine")
        if self.max_new_counterexamples is not None and self.max_new_counterexamples < 1:
            raise RepairError("max_new_counterexamples must be positive (or None)")
        if self.layer_schedule is not None and len(self.layer_schedule) == 0:
            raise RepairError("the layer schedule is empty")
        if self.memory_budget is not None and self.memory_budget < 1:
            raise RepairError("memory_budget must be positive bytes (or None)")
        if self.backend is not None:
            self._validate_backend(self.backend)

    @staticmethod
    def _validate_backend(spec: str) -> None:
        """Reject unknown backend names / malformed ``race:`` specs at decode
        time, so a job that misspells its LP portfolio fails before round 1.

        Degraded-but-registered backends (``highs_native`` without
        ``highspy``) pass: degradation is a capability, not a config error.
        """
        from repro.exceptions import LPError
        from repro.lp.backends import get_backend

        try:
            get_backend(spec)
        except LPError as error:
            raise RepairError(f"invalid LP backend spec {spec!r}: {error}") from error

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The config as a JSON-ready dictionary (tuples become lists)."""
        payload = dataclasses.asdict(self)
        if payload["layer_schedule"] is not None:
            payload["layer_schedule"] = list(payload["layer_schedule"])
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DriverConfig":
        """Rebuild a config from :meth:`to_dict` output (or hand-written JSON).

        Unknown keys are rejected rather than ignored: a job that misspells
        a knob must fail loudly, not silently run with the default.  One
        spelling convenience: ``lp_backend`` is accepted as an alias for
        ``backend`` (the name used in docs and racing examples), but never
        alongside it.
        """
        if "lp_backend" in payload:
            if "backend" in payload:
                raise RepairError(
                    'config gives both "backend" and its alias "lp_backend"'
                )
            payload = dict(payload)
            payload["backend"] = payload.pop("lp_backend")
        known = {entry.name for entry in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise RepairError(
                f"unknown driver config keys {sorted(unknown)}; known keys: {sorted(known)}"
            )
        return cls(**payload)

    def replace(self, **changes) -> "DriverConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)
