"""The counterexample-guided repair driver (verify → pool → repair → re-verify).

* :class:`repro.driver.config.DriverConfig` — the frozen, JSON-round-trip
  configuration of a driver run (every algorithm knob, no runtime
  resources); the unit the job daemon's declarative API is built on.
* :class:`repro.driver.pool.CounterexamplePool` — deduplicating,
  checkpointable store of verification counterexamples; converts into a
  batched pointwise repair specification.
* :class:`repro.driver.driver.RepairDriver` — the CEGIS loop with budget
  enforcement, layer escalation, and per-round drawdown tracking;
  :class:`repro.driver.driver.DriverReport` is its structured outcome.
"""

from repro.driver.config import DEFAULT_REPAIR_MARGIN, DriverConfig
from repro.driver.driver import (
    DriverReport,
    DriverTiming,
    RepairDriver,
    RoundRecord,
)
from repro.driver.pool import CounterexamplePool

__all__ = [
    "DEFAULT_REPAIR_MARGIN",
    "CounterexamplePool",
    "DriverConfig",
    "DriverReport",
    "DriverTiming",
    "RepairDriver",
    "RoundRecord",
]
