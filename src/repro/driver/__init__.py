"""The counterexample-guided repair driver (verify → pool → repair → re-verify).

* :class:`repro.driver.pool.CounterexamplePool` — deduplicating,
  checkpointable store of verification counterexamples; converts into a
  batched pointwise repair specification.
* :class:`repro.driver.driver.RepairDriver` — the CEGIS loop with budget
  enforcement, layer escalation, and per-round drawdown tracking;
  :class:`repro.driver.driver.DriverReport` is its structured outcome.
"""

from repro.driver.driver import (
    DEFAULT_REPAIR_MARGIN,
    DriverReport,
    DriverTiming,
    RepairDriver,
    RoundRecord,
)
from repro.driver.pool import CounterexamplePool

__all__ = [
    "DEFAULT_REPAIR_MARGIN",
    "CounterexamplePool",
    "DriverReport",
    "DriverTiming",
    "RepairDriver",
    "RoundRecord",
]
