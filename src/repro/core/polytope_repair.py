"""Provable Polytope Repair — Algorithm 2 of the paper.

A polytope repair specification constrains the network's output on input
polytopes containing infinitely many points.  For piecewise-linear networks,
value-channel edits never move the linear-region boundaries (Theorem 4.6), so
within each linear region the repaired network is an affine map; an affine
map sends a polytope into a target polytope exactly when it sends the
polytope's vertices there.  The algorithm therefore:

1. decomposes every specification polytope into the linear regions of the
   network (``LinRegions``; computed by the SyReNN substrate);
2. emits one key point per (region, vertex) pair, carrying the region's
   interior point as the activation point so the key point is interpreted
   under that region's activation pattern (Appendix B);
3. calls pointwise repair (Algorithm 1) on the resulting finite
   specification.
"""

from __future__ import annotations

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.result import RepairResult, RepairTiming
from repro.core.specs import OutputConstraint, PointRepairSpec, PolytopeRepairSpec
from repro.exceptions import NotPiecewiseLinearError, SpecificationError
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from repro.syrenn.regions import LinearRegion
from repro.utils.timing import Stopwatch


def polytope_repair(
    network: Network | DecoupledNetwork,
    layer_index: int,
    spec: PolytopeRepairSpec,
    *,
    norm: str = "linf",
    backend: str | None = None,
    delta_bound: float | None = None,
    batched: bool = True,
    sparse: bool | None = None,
) -> RepairResult:
    """Repair one layer so the network satisfies the polytope specification.

    Returns a :class:`RepairResult`; ``feasible=False`` means no single-layer
    repair of ``layer_index`` satisfies the specification.  Raises
    :class:`NotPiecewiseLinearError` if the network uses activation functions
    that are not piecewise linear (the paper's assumption for Algorithm 2).

    ``batched`` and ``sparse`` are forwarded to :func:`point_repair`: the
    key points generated from the linear regions are encoded through the
    vectorized multi-point Jacobian + sparse LP engine by default, with the
    legacy per-point path available for differential testing.
    """
    if spec.num_polytopes == 0:
        raise SpecificationError("the polytope specification has no polytopes")
    activation_network = (
        network.activation if isinstance(network, DecoupledNetwork) else network
    )
    if not activation_network.is_piecewise_linear():
        raise NotPiecewiseLinearError(
            "polytope repair requires piecewise-linear activation functions"
        )

    watch = Stopwatch()
    timing = RepairTiming()
    with watch.phase("linregions"):
        key_points, activation_points, constraints = reduce_to_key_points(
            activation_network, spec
        )
    timing.linregions_seconds += watch.total("linregions")

    point_spec = PointRepairSpec(
        points=np.array(key_points),
        constraints=constraints,
        activation_points=np.array(activation_points),
    )
    return point_repair(
        network,
        layer_index,
        point_spec,
        norm=norm,
        backend=backend,
        delta_bound=delta_bound,
        timing=timing,
        batched=batched,
        sparse=sparse,
    )


def region_key_points(
    vertices: np.ndarray,
    interior: np.ndarray,
    constraint: OutputConstraint,
) -> tuple[list[np.ndarray], list[np.ndarray], list[OutputConstraint]]:
    """Key-point triples of **one** linear region.

    Every vertex of the region becomes a key point interpreted under the
    region's activation pattern (pinned by ``interior``) and subject to
    ``constraint``.  This is the per-region unit of Algorithm 2's reduction:
    :func:`reduce_to_key_points` applies it to every linear region of a whole
    specification, and the counterexample pool applies it to exactly the
    violating regions the verifier pooled — producing byte-identical rows in
    both directions, which is what the driver-vs-one-shot differential tests
    pin.
    """
    vertices = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
    key_points = [vertices[index] for index in range(vertices.shape[0])]
    return key_points, [interior] * len(key_points), [constraint] * len(key_points)


def decompose_spec_entry(
    network: Network, region: LineSegment | np.ndarray
) -> list[LinearRegion]:
    """The linear regions of one specification polytope (line or plane)."""
    if isinstance(region, LineSegment):
        partition = transform_line(network, region)
        return [
            LinearRegion(vertices=piece.vertices, interior=piece.interior_point)
            for piece in partition.regions
        ]
    partition = transform_plane(network, region)
    return [
        LinearRegion(vertices=piece.input_vertices, interior=piece.interior_point)
        for piece in partition.regions
    ]


def reduce_to_key_points(
    network: Network, spec: PolytopeRepairSpec
) -> tuple[list[np.ndarray], list[np.ndarray], list[OutputConstraint]]:
    """Reduce a polytope specification to (key point, activation point, constraint) triples.

    Exposed separately so experiments can report the number of key points
    (the "Points" column of Table 2) and so the FT/MFT baselines can be given
    a comparable number of sampled points.
    """
    key_points: list[np.ndarray] = []
    activation_points: list[np.ndarray] = []
    constraints: list[OutputConstraint] = []
    for entry in spec.entries:
        for region in decompose_spec_entry(network, entry.region):
            points, activations, region_constraints = region_key_points(
                region.vertices, region.interior, entry.constraint
            )
            key_points.extend(points)
            activation_points.extend(activations)
            constraints.extend(region_constraints)
    if not key_points:
        raise SpecificationError("the polytope specification produced no key points")
    return key_points, activation_points, constraints


def count_key_points(network: Network | DecoupledNetwork, spec: PolytopeRepairSpec) -> int:
    """Number of key points Algorithm 2 will generate for this specification."""
    activation_network = (
        network.activation if isinstance(network, DecoupledNetwork) else network
    )
    key_points, _, _ = reduce_to_key_points(activation_network, spec)
    return len(key_points)
