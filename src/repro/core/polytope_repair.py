"""Provable Polytope Repair — Algorithm 2 of the paper.

A polytope repair specification constrains the network's output on input
polytopes containing infinitely many points.  For piecewise-linear networks,
value-channel edits never move the linear-region boundaries (Theorem 4.6), so
within each linear region the repaired network is an affine map; an affine
map sends a polytope into a target polytope exactly when it sends the
polytope's vertices there.  The algorithm therefore:

1. decomposes every specification polytope into the linear regions of the
   network (``LinRegions``; computed by the SyReNN substrate);
2. emits one key point per (region, vertex) pair, carrying the region's
   interior point as the activation point so the key point is interpreted
   under that region's activation pattern (Appendix B);
3. calls pointwise repair (Algorithm 1) on the resulting finite
   specification.
"""

from __future__ import annotations

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.result import RepairResult, RepairTiming
from repro.core.specs import OutputConstraint, PointRepairSpec, PolytopeRepairSpec
from repro.exceptions import NotPiecewiseLinearError, SpecificationError
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from repro.utils.timing import Stopwatch


def polytope_repair(
    network: Network | DecoupledNetwork,
    layer_index: int,
    spec: PolytopeRepairSpec,
    *,
    norm: str = "linf",
    backend: str | None = None,
    delta_bound: float | None = None,
    batched: bool = True,
    sparse: bool | None = None,
) -> RepairResult:
    """Repair one layer so the network satisfies the polytope specification.

    Returns a :class:`RepairResult`; ``feasible=False`` means no single-layer
    repair of ``layer_index`` satisfies the specification.  Raises
    :class:`NotPiecewiseLinearError` if the network uses activation functions
    that are not piecewise linear (the paper's assumption for Algorithm 2).

    ``batched`` and ``sparse`` are forwarded to :func:`point_repair`: the
    key points generated from the linear regions are encoded through the
    vectorized multi-point Jacobian + sparse LP engine by default, with the
    legacy per-point path available for differential testing.
    """
    if spec.num_polytopes == 0:
        raise SpecificationError("the polytope specification has no polytopes")
    activation_network = (
        network.activation if isinstance(network, DecoupledNetwork) else network
    )
    if not activation_network.is_piecewise_linear():
        raise NotPiecewiseLinearError(
            "polytope repair requires piecewise-linear activation functions"
        )

    watch = Stopwatch()
    timing = RepairTiming()
    with watch.phase("linregions"):
        key_points, activation_points, constraints = reduce_to_key_points(
            activation_network, spec
        )
    timing.linregions_seconds += watch.total("linregions")

    point_spec = PointRepairSpec(
        points=np.array(key_points),
        constraints=constraints,
        activation_points=np.array(activation_points),
    )
    return point_repair(
        network,
        layer_index,
        point_spec,
        norm=norm,
        backend=backend,
        delta_bound=delta_bound,
        timing=timing,
        batched=batched,
        sparse=sparse,
    )


def reduce_to_key_points(
    network: Network, spec: PolytopeRepairSpec
) -> tuple[list[np.ndarray], list[np.ndarray], list[OutputConstraint]]:
    """Reduce a polytope specification to (key point, activation point, constraint) triples.

    Exposed separately so experiments can report the number of key points
    (the "Points" column of Table 2) and so the FT/MFT baselines can be given
    a comparable number of sampled points.
    """
    key_points: list[np.ndarray] = []
    activation_points: list[np.ndarray] = []
    constraints: list[OutputConstraint] = []
    for entry in spec.entries:
        if isinstance(entry.region, LineSegment):
            partition = transform_line(network, entry.region)
            for region in partition.regions:
                interior = region.interior_point
                for vertex in region.vertices:
                    key_points.append(np.asarray(vertex, dtype=np.float64))
                    activation_points.append(interior)
                    constraints.append(entry.constraint)
        else:
            partition = transform_plane(network, entry.region)
            for region in partition.regions:
                interior = region.interior_point
                for vertex in region.input_vertices:
                    key_points.append(np.asarray(vertex, dtype=np.float64))
                    activation_points.append(interior)
                    constraints.append(entry.constraint)
    if not key_points:
        raise SpecificationError("the polytope specification produced no key points")
    return key_points, activation_points, constraints


def count_key_points(network: Network | DecoupledNetwork, spec: PolytopeRepairSpec) -> int:
    """Number of key points Algorithm 2 will generate for this specification."""
    activation_network = (
        network.activation if isinstance(network, DecoupledNetwork) else network
    )
    key_points, _, _ = reduce_to_key_points(activation_network, spec)
    return len(key_points)
