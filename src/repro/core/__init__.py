"""The paper's contribution: Decoupled DNNs and the provable repair algorithms.

* :class:`repro.core.ddnn.DecoupledNetwork` — the Decoupled DNN architecture
  of §4: an activation channel (the original network) plus a value channel
  whose activations are replaced by linearizations around the activation
  channel's pre-activations.
* :func:`repro.core.point_repair.point_repair` — Algorithm 1: provable
  pointwise repair of a single (value-channel) layer via an LP.
* :func:`repro.core.polytope_repair.polytope_repair` — Algorithm 2: provable
  polytope repair of piecewise-linear networks, reduced to pointwise repair
  on the vertices of the specification polytopes' linear regions.
* :mod:`repro.core.specs` — pointwise and polytope repair specifications.
"""

from repro.core.ddnn import DecoupledNetwork
from repro.core.specs import (
    OutputConstraint,
    PointRepairSpec,
    PolytopeRepairSpec,
    classification_constraint,
)
from repro.core.multi_layer import (
    iterative_point_repair,
    search_repair_layer,
    drawdown_score,
)
from repro.core.point_repair import IncrementalPointRepairSession, point_repair
from repro.core.polytope_repair import polytope_repair
from repro.core.result import RepairResult, RepairTiming

__all__ = [
    "DecoupledNetwork",
    "OutputConstraint",
    "PointRepairSpec",
    "PolytopeRepairSpec",
    "classification_constraint",
    "point_repair",
    "IncrementalPointRepairSession",
    "polytope_repair",
    "iterative_point_repair",
    "search_repair_layer",
    "drawdown_score",
    "RepairResult",
    "RepairTiming",
]
