"""Linearization of activation functions (Definition 4.2 of the paper).

The actual per-layer implementations live on the activation layers
themselves (:meth:`repro.nn.layer.Layer.linearize`); this module provides the
free function used by the Decoupled DNN plus a helper for verifying the
defining property of a linearization (used by the test-suite and useful when
adding new activation layers).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layer import Layer, LayerKind, Linearization


def linearize_activation(layer: Layer, preactivation: np.ndarray) -> Linearization:
    """Return ``Linearize[σ, preactivation]`` for an activation layer ``σ``."""
    if layer.kind is not LayerKind.ACTIVATION:
        raise TypeError(f"{type(layer).__name__} is not an activation layer")
    return layer.linearize(np.asarray(preactivation, dtype=np.float64))


def linearization_exact_at_center(
    layer: Layer, preactivation: np.ndarray, tolerance: float = 1e-9
) -> bool:
    """Check that the linearization agrees with σ at its center point.

    This is the only property of the linearization that Theorems 4.4 and 4.5
    rely on (Appendix C), so it is the invariant we verify for every
    activation layer in the test-suite.
    """
    preactivation = np.asarray(preactivation, dtype=np.float64).ravel()
    linearization = linearize_activation(layer, preactivation)
    linearized = linearization.apply(preactivation[None, :])[0]
    exact = layer.forward(preactivation[None, :])[0]
    return bool(np.allclose(linearized, exact, atol=tolerance))
