"""Result objects returned by the repair algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.lp.status import LPStatus


@dataclass
class RepairTiming:
    """Wall-clock breakdown of a repair, mirroring the paper's RQ4 analysis.

    The paper reports time spent computing linear regions, computing
    Jacobians, inside the LP solver (Gurobi), and "other"; Figure 7(b) and
    §7.2/§7.3 use exactly this split.
    """

    linregions_seconds: float = 0.0
    jacobian_seconds: float = 0.0
    lp_seconds: float = 0.0
    other_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total repair time."""
        return (
            self.linregions_seconds
            + self.jacobian_seconds
            + self.lp_seconds
            + self.other_seconds
        )

    def as_dict(self) -> dict[str, float]:
        """The breakdown as a plain dictionary (used by the reporting code)."""
        return {
            "linregions": self.linregions_seconds,
            "jacobian": self.jacobian_seconds,
            "lp": self.lp_seconds,
            "other": self.other_seconds,
            "total": self.total_seconds,
        }


@dataclass
class RepairResult:
    """Outcome of a provable repair attempt.

    Attributes
    ----------
    feasible:
        ``True`` if a satisfying single-layer repair exists and was found.
        ``False`` means the LP proved that *no* repair of the chosen layer
        satisfies the specification (the paper's ⊥ result).
    network:
        The repaired :class:`DecoupledNetwork` (``None`` when infeasible).
    delta:
        The parameter delta applied to the repaired layer (``None`` when
        infeasible).
    layer_index:
        Index of the repaired layer.
    lp_status:
        Raw status from the LP backend.
    timing:
        Wall-clock breakdown.
    num_key_points, num_constraint_rows, num_variables:
        LP size statistics (for the efficiency analyses of RQ4).
    objective_value:
        Optimal objective (the minimized norm surrogate), when feasible.
    norm:
        Which norm objective was minimized (``"l1"``, ``"linf"``, ...).
    """

    feasible: bool
    network: DecoupledNetwork | None
    delta: np.ndarray | None
    layer_index: int
    lp_status: LPStatus
    timing: RepairTiming = field(default_factory=RepairTiming)
    num_key_points: int = 0
    num_constraint_rows: int = 0
    num_variables: int = 0
    objective_value: float | None = None
    norm: str = "linf"

    @property
    def delta_linf_norm(self) -> float:
        """ℓ∞ norm of the applied delta (0.0 when infeasible)."""
        if self.delta is None or self.delta.size == 0:
            return 0.0
        return float(np.max(np.abs(self.delta)))

    @property
    def delta_l1_norm(self) -> float:
        """ℓ1 norm of the applied delta (0.0 when infeasible)."""
        if self.delta is None or self.delta.size == 0:
            return 0.0
        return float(np.sum(np.abs(self.delta)))

    def summary(self) -> dict:
        """A flat summary dictionary used by the experiment reporting code."""
        return {
            "feasible": self.feasible,
            "layer_index": self.layer_index,
            "lp_status": self.lp_status.value,
            "num_key_points": self.num_key_points,
            "num_constraint_rows": self.num_constraint_rows,
            "num_variables": self.num_variables,
            "delta_linf": self.delta_linf_norm,
            "delta_l1": self.delta_l1_norm,
            "norm": self.norm,
            **{f"time_{key}": value for key, value in self.timing.as_dict().items()},
        }
