"""Decoupled Deep Neural Networks (§4 of the paper).

A Decoupled DNN (DDNN) keeps two copies of the network's parameters:

* the **activation channel**, which is evaluated exactly like the original
  network and determines which linear piece of every activation function is
  used, and
* the **value channel**, which computes the output, but with every activation
  replaced by its linearization around the corresponding activation-channel
  pre-activation (Definition 4.3).

Constructing a DDNN with both channels equal to a network ``N`` yields a
function identical to ``N`` (Theorem 4.4).  Modifying the parameters of a
single value-channel layer changes the output *linearly* (Theorem 4.5) and
never moves the linear-region boundaries (Theorem 4.6) — the two facts the
repair algorithms exploit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, UnsupportedLayerError
from repro.nn.layer import LayerKind, as_batch
from repro.nn.network import Network


class DecoupledNetwork:
    """A Decoupled DNN built from activation-channel and value-channel layers."""

    def __init__(self, activation_network: Network, value_network: Network) -> None:
        if len(activation_network.layers) != len(value_network.layers):
            raise ShapeError("activation and value channels must have the same depth")
        for act_layer, val_layer in zip(activation_network.layers, value_network.layers):
            if type(act_layer) is not type(val_layer):
                raise ShapeError(
                    "activation and value channels must have the same layer types, "
                    f"got {type(act_layer).__name__} vs {type(val_layer).__name__}"
                )
            if (
                act_layer.input_size != val_layer.input_size
                or act_layer.output_size != val_layer.output_size
            ):
                raise ShapeError("activation and value channel layer sizes must match")
        self.activation = activation_network
        self.value = value_network

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: Network) -> "DecoupledNetwork":
        """The trivially equivalent DDNN of Theorem 4.4 (both channels = N)."""
        return cls(network.copy(), network.copy())

    def copy(self) -> "DecoupledNetwork":
        """A deep copy of both channels."""
        return DecoupledNetwork(self.activation.copy(), self.value.copy())

    # ------------------------------------------------------------------
    # Shape info
    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return self.activation.input_size

    @property
    def output_size(self) -> int:
        return self.activation.output_size

    @property
    def num_layers(self) -> int:
        return len(self.activation.layers)

    def repairable_layer_indices(self) -> list[int]:
        """Indices of value-channel layers that can be repaired."""
        return self.value.parameterized_layer_indices()

    def is_piecewise_linear(self) -> bool:
        """Whether the activation channel uses only PWL activations."""
        return self.activation.is_piecewise_linear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray, activation_values: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the DDNN.

        ``values`` feeds the value channel; ``activation_values`` feeds the
        activation channel and defaults to ``values`` (the standard DDNN
        semantics).  Supplying a different activation point is how the
        polytope repair algorithm pins the activation pattern of a linear
        region while evaluating at one of its (boundary) vertices
        (Appendix B of the paper).
        """
        value_batch, was_vector = as_batch(values)
        if activation_values is None:
            activation_batch = value_batch
        else:
            activation_batch, _ = as_batch(activation_values)
            if activation_batch.shape != value_batch.shape:
                raise ShapeError(
                    "activation_values must have the same shape as values "
                    f"({activation_batch.shape} vs {value_batch.shape})"
                )
        if value_batch.shape[1] != self.input_size:
            raise ShapeError(
                f"expected inputs of size {self.input_size}, got {value_batch.shape[1]}"
            )

        current_activation = activation_batch
        current_value = value_batch
        for act_layer, val_layer in zip(self.activation.layers, self.value.layers):
            if act_layer.kind is LayerKind.ACTIVATION:
                next_activation = act_layer.forward(current_activation)
                next_value = act_layer.decoupled_forward(current_activation, current_value)
            else:
                next_activation = act_layer.forward(current_activation)
                next_value = val_layer.forward(current_value)
            current_activation = next_activation
            current_value = next_value
        return current_value[0] if was_vector else current_value

    __call__ = compute

    def predict(self, values: np.ndarray, activation_values: np.ndarray | None = None) -> np.ndarray:
        """Argmax class predictions of the DDNN."""
        outputs = np.atleast_2d(self.compute(values, activation_values))
        return outputs.argmax(axis=1)

    def accuracy(self, values: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy of the DDNN on ``(values, labels)``."""
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(self.predict(values) == labels))

    # ------------------------------------------------------------------
    # Channel traces (single input vector)
    # ------------------------------------------------------------------
    def channel_traces(
        self, value_point: np.ndarray, activation_point: np.ndarray | None = None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-layer inputs of both channels for a single input vector.

        Returns ``(activation_inputs, value_inputs)`` where each list has
        ``num_layers + 1`` entries; entry ``i`` is the input to layer ``i``
        and the final entry is the channel output.
        """
        value_point = np.asarray(value_point, dtype=np.float64).ravel()
        activation_point = (
            value_point
            if activation_point is None
            else np.asarray(activation_point, dtype=np.float64).ravel()
        )
        activation_inputs = [activation_point[None, :]]
        value_inputs = [value_point[None, :]]
        current_activation = activation_inputs[0]
        current_value = value_inputs[0]
        for act_layer, val_layer in zip(self.activation.layers, self.value.layers):
            if act_layer.kind is LayerKind.ACTIVATION:
                next_value = act_layer.decoupled_forward(current_activation, current_value)
                next_activation = act_layer.forward(current_activation)
            else:
                next_value = val_layer.forward(current_value)
                next_activation = act_layer.forward(current_activation)
            current_activation = next_activation
            current_value = next_value
            activation_inputs.append(current_activation)
            value_inputs.append(current_value)
        return activation_inputs, value_inputs

    # ------------------------------------------------------------------
    # Channel traces (batch of input vectors)
    # ------------------------------------------------------------------
    def batch_channel_traces(
        self, value_points: np.ndarray, activation_points: np.ndarray | None = None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-layer inputs of both channels for a batch of input vectors.

        The batched analogue of :meth:`channel_traces`: ``value_points`` is a
        ``(k, n)`` array (``activation_points`` likewise, defaulting to
        ``value_points``) and each returned list entry has shape
        ``(k, layer_input_size)``.  All ``k`` points flow through the layer
        stack together, so the cost of the Python layer loop is paid once per
        layer instead of once per point.
        """
        value_batch = np.atleast_2d(np.asarray(value_points, dtype=np.float64))
        if activation_points is None:
            activation_batch = value_batch
        else:
            activation_batch = np.atleast_2d(np.asarray(activation_points, dtype=np.float64))
            if activation_batch.shape != value_batch.shape:
                raise ShapeError(
                    "activation_points must have the same shape as value_points "
                    f"({activation_batch.shape} vs {value_batch.shape})"
                )
        if value_batch.shape[1] != self.input_size:
            raise ShapeError(
                f"expected inputs of size {self.input_size}, got {value_batch.shape[1]}"
            )
        activation_inputs = [activation_batch]
        value_inputs = [value_batch]
        current_activation = activation_batch
        current_value = value_batch
        for act_layer, val_layer in zip(self.activation.layers, self.value.layers):
            if act_layer.kind is LayerKind.ACTIVATION:
                next_value = act_layer.decoupled_forward(current_activation, current_value)
                next_activation = act_layer.forward(current_activation)
            else:
                next_value = val_layer.forward(current_value)
                next_activation = act_layer.forward(current_activation)
            current_activation = next_activation
            current_value = next_value
            activation_inputs.append(current_activation)
            value_inputs.append(current_value)
        return activation_inputs, value_inputs

    # ------------------------------------------------------------------
    # Parameter Jacobian (Theorem 4.5)
    # ------------------------------------------------------------------
    def parameter_jacobian(
        self,
        layer_index: int,
        value_point: np.ndarray,
        activation_point: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Output and Jacobian of the DDNN w.r.t. one value layer's parameters.

        Returns ``(output, jacobian)`` where ``output = N(value_point)`` and
        ``jacobian`` has shape ``(output_size, num_parameters_of_layer)``.
        Because the DDNN output is exactly affine in the chosen value-channel
        layer's parameters (Theorem 4.5), for any parameter delta ``Δ``::

            N_Δ(value_point) = output + jacobian @ Δ
        """
        layer_index = self._check_repairable(layer_index)
        activation_inputs, value_inputs = self.channel_traces(value_point, activation_point)
        output = value_inputs[-1][0]

        # Downstream linear map A from the repaired layer's output to the
        # network output, computed by pushing the identity matrix backwards
        # through the value channel (with activations linearized around the
        # activation channel's pre-activations).
        downstream = np.eye(self.output_size)
        for index in range(self.num_layers - 1, layer_index, -1):
            act_layer = self.activation.layers[index]
            val_layer = self.value.layers[index]
            if act_layer.kind is LayerKind.ACTIVATION:
                linearization = act_layer.linearize(activation_inputs[index][0])
                downstream = linearization.backward(downstream)
            else:
                downstream = val_layer.backward_input(downstream, value_inputs[index])

        layer = self.value.layers[layer_index]
        jacobian = layer.parameter_jacobian(downstream, value_inputs[layer_index][0])
        return output, jacobian

    def batch_parameter_jacobian(
        self,
        layer_index: int,
        points: np.ndarray,
        activation_points: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Outputs and parameter Jacobians of the DDNN at many points at once.

        The vectorized analogue of :meth:`parameter_jacobian`: ``points`` is
        a ``(k, n)`` array of value-channel inputs (``activation_points``
        likewise, defaulting to ``points``), and the return value is
        ``(outputs, jacobians)`` with shapes ``(k, output_size)`` and
        ``(k, output_size, num_parameters_of_layer)``.

        All ``k`` points share one forward pass (:meth:`batch_channel_traces`)
        and one backward pass that pushes a stack of identity matrices
        through the value channel, using each point's own linearizations from
        the activation channel.  The result is numerically identical (up to
        floating-point association) to calling :meth:`parameter_jacobian`
        once per point, but the per-point Python overhead is eliminated —
        this is the hot path of the batched repair engine.
        """
        layer_index = self._check_repairable(layer_index)
        activation_inputs, value_inputs = self.batch_channel_traces(points, activation_points)
        outputs = value_inputs[-1]
        num_points = outputs.shape[0]

        # Per-point downstream linear maps from the repaired layer's output
        # to the network output: a (k, m, ·) stack seeded with identities.
        downstream = np.repeat(np.eye(self.output_size)[None, :, :], num_points, axis=0)
        for index in range(self.num_layers - 1, layer_index, -1):
            act_layer = self.activation.layers[index]
            val_layer = self.value.layers[index]
            if act_layer.kind is LayerKind.ACTIVATION:
                downstream = act_layer.batch_linearize_backward(
                    downstream, activation_inputs[index]
                )
            else:
                downstream = val_layer.batch_backward_input(downstream, value_inputs[index])

        layer = self.value.layers[layer_index]
        jacobians = layer.batch_parameter_jacobian(downstream, value_inputs[layer_index])
        return outputs, jacobians

    def _check_repairable(self, layer_index: int) -> int:
        if layer_index < 0:
            layer_index += self.num_layers
        if not 0 <= layer_index < self.num_layers:
            raise UnsupportedLayerError(f"layer index {layer_index} out of range")
        if self.value.layers[layer_index].kind is not LayerKind.PARAMETERIZED:
            raise UnsupportedLayerError(
                f"layer {layer_index} ({type(self.value.layers[layer_index]).__name__}) "
                "has no repairable parameters"
            )
        return layer_index

    # ------------------------------------------------------------------
    # Applying a repair
    # ------------------------------------------------------------------
    def apply_parameter_delta(self, layer_index: int, delta: np.ndarray) -> None:
        """Add ``delta`` to the flat parameters of one value-channel layer."""
        layer_index = self._check_repairable(layer_index)
        layer = self.value.layers[layer_index]
        delta = np.asarray(delta, dtype=np.float64).ravel()
        if delta.size != layer.num_parameters:
            raise ShapeError(
                f"delta has {delta.size} entries, layer {layer_index} has "
                f"{layer.num_parameters} parameters"
            )
        layer.set_parameters(layer.get_parameters() + delta)

    def __repr__(self) -> str:
        return f"DecoupledNetwork(layers={self.num_layers}, inputs={self.input_size}, outputs={self.output_size})"
