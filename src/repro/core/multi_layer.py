"""Multi-layer and layer-search extensions of the repair algorithms.

The paper's conclusion (§9) sketches two practical extensions that this
module implements on top of Algorithms 1 and 2:

* **Iterative multi-layer repair** — when no single layer admits a repair
  (or a smaller aggregate change is wanted), apply the single-layer LP
  formulation to a sequence of layers, feeding each repaired DDNN into the
  next round and stopping as soon as the specification is satisfied.
* **Repair-layer search** — §7.1 observes that which layer is repaired
  drives the drawdown, and suggests a heuristic of focusing on later
  layers.  :func:`search_repair_layer` tries candidate layers (by default
  from the output backwards), scores each feasible repair with a
  user-supplied function (typically drawdown on a held-out set), and
  returns the best one.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.point_repair import point_repair
from repro.core.result import RepairResult
from repro.core.specs import PointRepairSpec
from repro.exceptions import RepairError
from repro.nn.network import Network


@dataclass
class MultiLayerRepairResult:
    """Outcome of an iterative multi-layer repair.

    Attributes
    ----------
    satisfied:
        Whether the final network satisfies the specification.
    network:
        The final DDNN (with all accepted per-layer deltas applied).
    per_layer_results:
        The single-layer :class:`RepairResult` of every round, in order.
    repaired_layers:
        Indices of the layers whose deltas were applied.
    """

    satisfied: bool
    network: DecoupledNetwork
    per_layer_results: list[RepairResult] = field(default_factory=list)
    repaired_layers: list[int] = field(default_factory=list)

    @property
    def total_delta_l1_norm(self) -> float:
        """Sum of the ℓ1 norms of all applied per-layer deltas."""
        return float(sum(result.delta_l1_norm for result in self.per_layer_results if result.feasible))


def iterative_point_repair(
    network: Network | DecoupledNetwork,
    layer_indices: Sequence[int],
    spec: PointRepairSpec,
    *,
    norm: str = "linf",
    backend: str | None = None,
    stop_when_satisfied: bool = True,
    batched: bool = True,
    sparse: bool | None = None,
) -> MultiLayerRepairResult:
    """Repair several layers in sequence until the specification holds.

    Each round runs Algorithm 1 on the *current* DDNN for the next layer in
    ``layer_indices`` and applies the resulting delta if one exists.  With
    ``stop_when_satisfied`` (the default) the loop exits as soon as the
    specification is met — often after the first feasible round, in which
    case the result is identical to single-layer repair.

    Rounds whose LP is infeasible are skipped (their layer simply cannot fix
    the remaining error on its own); the final ``satisfied`` flag reports
    whether the accumulated repairs meet the specification.
    """
    if not layer_indices:
        raise RepairError("iterative repair needs at least one layer index")
    ddnn = (
        network.copy()
        if isinstance(network, DecoupledNetwork)
        else DecoupledNetwork.from_network(network)
    )
    results: list[RepairResult] = []
    repaired: list[int] = []
    for layer_index in layer_indices:
        if stop_when_satisfied and spec.is_satisfied_by(ddnn):
            break
        result = point_repair(
            ddnn, layer_index, spec, norm=norm, backend=backend, batched=batched, sparse=sparse
        )
        results.append(result)
        if result.feasible:
            ddnn = result.network
            repaired.append(result.layer_index)
            if stop_when_satisfied:
                break
    return MultiLayerRepairResult(
        satisfied=spec.is_satisfied_by(ddnn),
        network=ddnn,
        per_layer_results=results,
        repaired_layers=repaired,
    )


@dataclass
class LayerSearchResult:
    """Outcome of a repair-layer search."""

    best_result: RepairResult | None
    best_score: float
    scores: dict[int, float] = field(default_factory=dict)
    infeasible_layers: list[int] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """Whether any candidate layer admitted a feasible repair."""
        return self.best_result is not None


def search_repair_layer(
    network: Network | DecoupledNetwork,
    spec: PointRepairSpec,
    score: Callable[[RepairResult], float],
    *,
    candidate_layers: Sequence[int] | None = None,
    norm: str = "linf",
    backend: str | None = None,
    stop_at_score: float | None = None,
    batched: bool = True,
    sparse: bool | None = None,
) -> LayerSearchResult:
    """Try repairing each candidate layer and keep the lowest-scoring repair.

    ``score`` maps a feasible :class:`RepairResult` to a number to minimize
    (e.g. drawdown on a held-out set, or the delta norm).  Candidates default
    to every repairable layer from the output backwards — the heuristic §7.1
    suggests for image networks.  ``stop_at_score`` short-circuits the search
    once a repair scores at or below the threshold.
    """
    ddnn = (
        network
        if isinstance(network, DecoupledNetwork)
        else DecoupledNetwork.from_network(network)
    )
    if candidate_layers is None:
        candidate_layers = list(reversed(ddnn.repairable_layer_indices()))
    best_result: RepairResult | None = None
    best_score = float("inf")
    scores: dict[int, float] = {}
    infeasible: list[int] = []
    for layer_index in candidate_layers:
        result = point_repair(
            ddnn, layer_index, spec, norm=norm, backend=backend, batched=batched, sparse=sparse
        )
        if not result.feasible:
            infeasible.append(layer_index)
            continue
        value = float(score(result))
        scores[result.layer_index] = value
        if value < best_score:
            best_score = value
            best_result = result
        if stop_at_score is not None and best_score <= stop_at_score:
            break
    return LayerSearchResult(
        best_result=best_result,
        best_score=best_score if best_result is not None else float("nan"),
        scores=scores,
        infeasible_layers=infeasible,
    )


def drawdown_score(
    buggy: Network | DecoupledNetwork,
    drawdown_inputs: np.ndarray,
    drawdown_labels: np.ndarray,
) -> Callable[[RepairResult], float]:
    """A ready-made score function: drawdown on a held-out set.

    Use with :func:`search_repair_layer`::

        search_repair_layer(net, spec, drawdown_score(net, held_out_x, held_out_y))
    """
    baseline = buggy.accuracy(drawdown_inputs, drawdown_labels)

    def score(result: RepairResult) -> float:
        assert result.network is not None
        return 100.0 * (baseline - result.network.accuracy(drawdown_inputs, drawdown_labels))

    return score
