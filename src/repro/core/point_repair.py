"""Provable Pointwise Repair — Algorithm 1 of the paper.

Given a network ``N``, a layer index ``i``, and a pointwise repair
specification ``(X, A·, b·)``, the algorithm:

1. constructs the trivially equivalent DDNN (Theorem 4.4);
2. for every point ``x ∈ X`` computes the output ``N(x)`` and the Jacobian
   ``J_x`` of the DDNN output with respect to the parameters of value layer
   ``i`` (exact by Theorem 4.5);
3. collects the linear constraints ``A_x (N(x) + J_x Δ) ≤ b_x``;
4. solves an LP minimizing the ℓ∞ and/or ℓ1 norm of ``Δ``;
5. adds the optimal ``Δ`` into the value layer.

The result is either a repaired DDNN that provably satisfies the
specification with a minimal single-layer change, or a proof (LP
infeasibility) that no single-layer repair of layer ``i`` exists.

Two implementations of steps 2–3 exist.  The **batched engine** (default)
computes all Jacobians in one vectorized multi-point pass
(:meth:`~repro.core.ddnn.DecoupledNetwork.batch_parameter_jacobian`) and
assembles the constraint rows of every point with grouped einsums into a
single LP block, which downstream becomes a sparse CSR standard form.  The
**legacy engine** (``batched=False``) loops over the points one at a time; it
is retained as the reference implementation for differential testing — both
engines produce the same LP, row for row.
"""

from __future__ import annotations

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.jacobian import (
    JacobianChunkStream,
    encode_constraints_batched,
    encode_constraints_padded,
)
from repro.core.result import RepairResult, RepairTiming
from repro.core.specs import PointRepairSpec
from repro.exceptions import SpecificationError
from repro.lp.model import LPModel
from repro.lp.norms import add_norm_objective
from repro.lp.status import LPStatus
from repro.nn.network import Network
from repro.utils.timing import Stopwatch


def point_repair(
    network: Network | DecoupledNetwork,
    layer_index: int,
    spec: PointRepairSpec,
    *,
    norm: str = "linf",
    backend: str | None = None,
    delta_bound: float | None = None,
    timing: RepairTiming | None = None,
    batched: bool = True,
    sparse: bool | None = None,
    max_chunk_bytes: int | None = None,
    engine=None,
) -> RepairResult:
    """Repair one (value-channel) layer so every spec point satisfies its constraint.

    Parameters
    ----------
    network:
        The buggy network.  A plain :class:`Network` is decoupled first
        (Theorem 4.4); an existing :class:`DecoupledNetwork` is copied.
    layer_index:
        Index of the layer to repair; must be a parameterized layer.
    spec:
        The pointwise repair specification.
    norm:
        Norm of ``Δ`` to minimize — ``"linf"``, ``"l1"``, or ``"l1+linf"``.
    backend:
        LP backend name (``None`` = default scipy/HiGHS backend).
    delta_bound:
        Optional box bound ``|Δ_i| ≤ delta_bound`` added to every delta
        variable; occasionally useful to keep very large repairs numerically
        tame.  ``None`` (the default, and the paper's setting) leaves the
        deltas free.
    timing:
        An existing :class:`RepairTiming` to accumulate into (used by the
        polytope repair algorithm, which has already spent time computing
        linear regions).
    batched:
        ``True`` (the default) computes all spec-point Jacobians in one
        vectorized pass and encodes the LP constraints as a single block;
        ``False`` uses the legacy one-point-at-a-time loop.  Both paths
        build the same LP (identical rows in identical order) — the flag
        exists for differential testing and performance comparison.
    sparse:
        Forwarded to :meth:`repro.lp.model.LPModel.solve`: ``True`` hands
        the backend a CSR standard form, ``False`` a dense one, ``None``
        (default) lets the backend's ``supports_sparse`` flag decide.
    max_chunk_bytes:
        ``None`` (default) keeps the in-memory path: one dense
        ``(total_rows, params)`` block.  A byte budget switches to the
        out-of-core path — a :class:`~repro.core.jacobian.JacobianChunkStream`
        feeds bounded CSR row blocks straight into the model, so the dense
        intermediate never exceeds the budget.  Both paths assemble the
        same standard form byte for byte.
    engine:
        Optional :class:`~repro.engine.engine.ShardedSyrennEngine` used to
        shard chunk encoding across workers (chunked path only; merged in
        input order, so results stay byte-identical to serial).
    """
    if spec.input_dimension != _input_size(network):
        raise SpecificationError(
            f"specification points have dimension {spec.input_dimension}, "
            f"network expects {_input_size(network)}"
        )
    watch = Stopwatch()
    timing = timing if timing is not None else RepairTiming()

    if isinstance(network, DecoupledNetwork):
        ddnn = network.copy()
    else:
        ddnn = DecoupledNetwork.from_network(network)
    layer_index = ddnn._check_repairable(layer_index)
    num_parameters = ddnn.value.layers[layer_index].num_parameters

    model = LPModel()
    bound = np.inf if delta_bound is None else float(delta_bound)
    delta_indices = model.add_variables(num_parameters, "delta", lower=-bound, upper=bound)
    # The norm rows go in *first* so constraint rows always occupy the tail
    # of the inequality block: an IncrementalPointRepairSession that appends
    # counterexample rows round after round then produces exactly this row
    # order, which is what keeps incremental and cold solves byte-identical.
    add_norm_objective(model, delta_indices, norm)

    with watch.phase("jacobian"):
        if max_chunk_bytes is not None:
            stream = JacobianChunkStream(
                ddnn, layer_index, spec, max_chunk_bytes=max_chunk_bytes, engine=engine
            )
            constraint_rows = 0
            for matrix, rhs in stream:
                model.add_leq_block(matrix, rhs, delta_indices)
                constraint_rows += int(rhs.size)
            encoded_blocks = []
        elif batched:
            lhs, rhs = encode_constraints_batched(ddnn, layer_index, spec)
            encoded_blocks = [(lhs, rhs)]
            constraint_rows = rhs.size
        else:
            constraint_rows = 0
            encoded_blocks = []
            for index in range(spec.num_points):
                output, jacobian = ddnn.parameter_jacobian(
                    layer_index, spec.points[index], spec.activation_point(index)
                )
                constraint = spec.constraints[index]
                # A_x (N(x) + J Δ) ≤ b_x   ⇔   (A_x J) Δ ≤ b_x - A_x N(x)
                encoded_blocks.append(
                    (constraint.a @ jacobian, constraint.b - constraint.a @ output)
                )
                constraint_rows += constraint.num_constraints
    for matrix, rhs in encoded_blocks:
        model.add_leq_block(matrix, rhs, delta_indices)

    with watch.phase("lp"):
        solution = model.solve(backend, sparse=sparse)

    timing.jacobian_seconds += watch.total("jacobian")
    timing.lp_seconds += watch.total("lp")
    timing.other_seconds += watch.other()

    if not solution.status.is_optimal:
        feasible = False
        status = solution.status
        if status not in (LPStatus.INFEASIBLE, LPStatus.UNBOUNDED):
            status = LPStatus.ERROR
        return RepairResult(
            feasible=feasible,
            network=None,
            delta=None,
            layer_index=layer_index,
            lp_status=status,
            timing=timing,
            num_key_points=spec.num_points,
            num_constraint_rows=constraint_rows,
            num_variables=model.num_variables,
            norm=norm,
        )

    delta = solution.value_of(delta_indices)
    ddnn.apply_parameter_delta(layer_index, delta)
    return RepairResult(
        feasible=True,
        network=ddnn,
        delta=delta,
        layer_index=layer_index,
        lp_status=solution.status,
        timing=timing,
        num_key_points=spec.num_points,
        num_constraint_rows=constraint_rows,
        num_variables=model.num_variables,
        objective_value=solution.objective,
        norm=norm,
    )


# The grouped-einsum encoder moved to repro.core.jacobian so the chunk
# stream and the engine workers can share it; the old private name stays
# importable for differential tests written against it.
_encode_constraints_batched = encode_constraints_batched


def _input_size(network: Network | DecoupledNetwork) -> int:
    return network.input_size


class IncrementalPointRepairSession:
    """A pointwise repair LP that grows across CEGIS rounds.

    A repair driver solves ``point_repair(base, layer, pool)`` every round
    with a pool that only ever grows, so round *k*'s LP is round *k-1*'s
    plus the new counterexamples' rows.  This session exploits that: it
    keeps one :class:`~repro.lp.model.LPModel` (delta variables plus the
    norm objective) alive, :meth:`append_points` encodes **only the new
    points'** Jacobian rows (the per-round Jacobian cost scales with the new
    points, not the pool), and :meth:`solve` re-solves through an
    :class:`~repro.lp.model.LPSession` that threads each round's
    :class:`~repro.lp.model.WarmStart` handle into the next solve.

    Because :func:`point_repair` emits the norm rows first, the session's
    standard form is row-for-row identical to what a cold ``point_repair``
    of the whole accumulated spec would build — so for a backend whose warm
    start is exact (``warm_start_is_exact``), incremental solves return
    byte-identical deltas to cold ones.

    The session encodes against a private copy of the base network and never
    mutates it; each feasible :meth:`solve` returns a *fresh* repaired copy.
    """

    def __init__(
        self,
        network: Network | DecoupledNetwork,
        layer_index: int,
        *,
        norm: str = "linf",
        backend: str | None = None,
        delta_bound: float | None = None,
        sparse: bool | None = None,
        warm_start: bool = True,
        max_chunk_bytes: int | None = None,
        engine=None,
    ) -> None:
        if isinstance(network, DecoupledNetwork):
            self.ddnn = network.copy()
        else:
            self.ddnn = DecoupledNetwork.from_network(network)
        self.layer_index = self.ddnn._check_repairable(layer_index)
        self.norm = norm
        self.warm_start = bool(warm_start)
        self.max_chunk_bytes = max_chunk_bytes
        self.engine = engine
        num_parameters = self.ddnn.value.layers[self.layer_index].num_parameters
        self.model = LPModel()
        bound = np.inf if delta_bound is None else float(delta_bound)
        self.delta_indices = self.model.add_variables(
            num_parameters, "delta", lower=-bound, upper=bound
        )
        add_norm_objective(self.model, self.delta_indices, norm)
        self.session = self.model.incremental_session(sparse=sparse, backend=backend)
        self.num_points = 0
        self.constraint_rows = 0
        self.rows_appended_last = 0
        self.last_solution = None
        self._handle = None
        self._pending_timing = RepairTiming()

    def append_points(self, spec: PointRepairSpec) -> int:
        """Encode and append the constraint rows of ``spec``'s points.

        Returns the number of LP rows appended.  ``spec`` must contain only
        points *not* previously appended — the caller (the driver) slices
        its pool.
        """
        if spec.input_dimension != self.ddnn.input_size:
            raise SpecificationError(
                f"specification points have dimension {spec.input_dimension}, "
                f"network expects {self.ddnn.input_size}"
            )
        watch = Stopwatch()
        if self.max_chunk_bytes is not None:
            # Out-of-core append: the chunk stream yields bounded CSR row
            # blocks which append_rows ingests one at a time, so neither the
            # dense intermediate nor more than one chunk is ever in flight.
            with watch.phase("jacobian"):
                stream = JacobianChunkStream(
                    self.ddnn,
                    self.layer_index,
                    spec,
                    max_chunk_bytes=self.max_chunk_bytes,
                    engine=self.engine,
                )
                rows = self.session.append_rows(
                    stream=(
                        (matrix, rhs, self.delta_indices) for matrix, rhs in stream
                    )
                )
        else:
            with watch.phase("jacobian"):
                # The single-point pad (see encode_constraints_padded): NumPy
                # routes one-row matmuls through a different BLAS kernel than
                # larger batches, whose last-bit rounding differs — padding
                # keeps every appended row on the same batched code path as a
                # cold whole-pool encoding, preserving byte-identity.
                lhs, rhs = encode_constraints_padded(self.ddnn, self.layer_index, spec)
            self.model.add_leq_block(lhs, rhs, self.delta_indices)
            rows = self.session.append_rows()
        self.num_points += spec.num_points
        self.constraint_rows += rows
        self.rows_appended_last = rows
        self._pending_timing.jacobian_seconds += watch.total("jacobian")
        self._pending_timing.other_seconds += watch.other()
        return rows

    def solve(self) -> RepairResult:
        """Solve the accumulated LP, warm-started from the previous round."""
        watch = Stopwatch()
        with watch.phase("lp"):
            solution = self.session.solve(
                warm_start=self._handle if self.warm_start else None
            )
        self.last_solution = solution
        timing = self._pending_timing
        timing.lp_seconds += watch.total("lp")
        timing.other_seconds += watch.other()
        self._pending_timing = RepairTiming()

        if not solution.status.is_optimal:
            status = solution.status
            if status not in (LPStatus.INFEASIBLE, LPStatus.UNBOUNDED):
                status = LPStatus.ERROR
            return RepairResult(
                feasible=False,
                network=None,
                delta=None,
                layer_index=self.layer_index,
                lp_status=status,
                timing=timing,
                num_key_points=self.num_points,
                num_constraint_rows=self.constraint_rows,
                num_variables=self.model.num_variables,
                norm=self.norm,
            )
        self._handle = solution.warm_start
        delta = solution.value_of(self.delta_indices)
        repaired = self.ddnn.copy()
        repaired.apply_parameter_delta(self.layer_index, delta)
        return RepairResult(
            feasible=True,
            network=repaired,
            delta=delta,
            layer_index=self.layer_index,
            lp_status=solution.status,
            timing=timing,
            num_key_points=self.num_points,
            num_constraint_rows=self.constraint_rows,
            num_variables=self.model.num_variables,
            objective_value=solution.objective,
            norm=self.norm,
        )
