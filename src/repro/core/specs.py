"""Repair specifications (Definitions 5.1 and 6.1 of the paper).

A *pointwise* repair specification pairs finitely many input points with an
output polytope each: the repaired network must map every point into its
polytope.  A *polytope* repair specification does the same for finitely many
input polytopes (line segments or planar polygons), each containing
infinitely many points.

The most common output polytope in the evaluation is the "classified as
label y" region, produced by :func:`classification_constraint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SpecificationError
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment


#: An output constraint is simply an output-space polytope ``{y : A y ≤ b}``.
OutputConstraint = HPolytope


def dedupe_exact_vertices(vertices: np.ndarray) -> np.ndarray:
    """Drop exact-duplicate rows of a vertex array, preserving first-seen order.

    Repeated vertices in a polygon specification are geometrically inert but
    not free: every duplicate becomes a duplicate (key point, activation
    point, constraint) row in Algorithm 2's reduction, bloating the repair
    LP.  Only *exact* duplicates are dropped — nearby-but-distinct vertices
    are kept, since collapsing those would change the polygon.
    """
    vertices = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
    _, first_seen = np.unique(vertices, axis=0, return_index=True)
    if first_seen.size == vertices.shape[0]:
        return vertices
    return vertices[np.sort(first_seen)]


def classification_constraint(num_classes: int, label: int, margin: float = 0.0) -> HPolytope:
    """The constraint "output ``label`` is the (strict) argmax".

    ``margin`` requires the winning logit to beat every other logit by at
    least that amount, which makes repaired classifications robust to the
    floating-point noise of re-evaluating the network.
    """
    return HPolytope.argmax_region(num_classes, label, margin)


@dataclass
class PointRepairSpec:
    """A pointwise repair specification ``(X, A·, b·)``.

    Attributes
    ----------
    points:
        ``(k, n)`` array of repair points.
    constraints:
        One :class:`OutputConstraint` per point.
    activation_points:
        Optional ``(k, n)`` array.  When given, point ``i``'s constraint is
        evaluated on the DDNN with the activation channel run on
        ``activation_points[i]`` instead of ``points[i]``.  This is how the
        polytope repair algorithm pins each key point to the linear region it
        represents (Appendix B); ordinary pointwise specifications leave it
        ``None``.
    """

    points: np.ndarray
    constraints: list[OutputConstraint]
    activation_points: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points, dtype=np.float64))
        if self.points.shape[0] != len(self.constraints):
            raise SpecificationError(
                f"{self.points.shape[0]} points but {len(self.constraints)} constraints"
            )
        if self.points.shape[0] == 0:
            raise SpecificationError("a pointwise specification needs at least one point")
        if self.activation_points is not None:
            self.activation_points = np.atleast_2d(
                np.asarray(self.activation_points, dtype=np.float64)
            )
            if self.activation_points.shape != self.points.shape:
                raise SpecificationError(
                    "activation_points must have the same shape as points"
                )

    @property
    def num_points(self) -> int:
        """Number of repair points."""
        return self.points.shape[0]

    @property
    def num_constraint_rows(self) -> int:
        """Total number of half-space constraint rows across all points."""
        return sum(constraint.num_constraints for constraint in self.constraints)

    @property
    def input_dimension(self) -> int:
        """Dimension of the input space."""
        return self.points.shape[1]

    def activation_point(self, index: int) -> np.ndarray:
        """The activation point used for repair point ``index``."""
        if self.activation_points is None:
            return self.points[index]
        return self.activation_points[index]

    @classmethod
    def from_labels(
        cls,
        points,
        labels,
        num_classes: int,
        margin: float = 0.0,
    ) -> "PointRepairSpec":
        """Build a classification spec: point ``i`` must be classified ``labels[i]``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        labels = np.asarray(labels, dtype=int).ravel()
        if points.shape[0] != labels.size:
            raise SpecificationError("one label per point is required")
        constraints = [
            classification_constraint(num_classes, int(label), margin) for label in labels
        ]
        return cls(points=points, constraints=constraints)

    def is_satisfied_by(self, network, tolerance: float = 1e-6) -> bool:
        """Whether ``network`` (Network or DDNN) satisfies every constraint."""
        for index in range(self.num_points):
            try:
                output = network.compute(self.points[index], self.activation_point(index))
            except TypeError:
                output = network.compute(self.points[index])
            if not self.constraints[index].contains(np.asarray(output), tolerance):
                return False
        return True


@dataclass
class _PolytopeEntry:
    """One input polytope and the output constraint it must map into."""

    region: LineSegment | np.ndarray
    constraint: OutputConstraint


@dataclass
class PolytopeRepairSpec:
    """A polytope repair specification ``(X, A·, b·)``.

    Input polytopes are either :class:`LineSegment` objects (1-D polytopes)
    or ``(k, n)`` vertex arrays of convex planar polygons (2-D polytopes).
    """

    entries: list[_PolytopeEntry] = field(default_factory=list)

    @property
    def num_polytopes(self) -> int:
        """Number of input polytopes in the specification."""
        return len(self.entries)

    def add_segment(self, segment: LineSegment, constraint: OutputConstraint) -> None:
        """Require every point of ``segment`` to map into ``constraint``."""
        self.entries.append(_PolytopeEntry(segment, constraint))

    def add_plane(self, vertices, constraint: OutputConstraint) -> None:
        """Require every point of the convex planar polygon to map into ``constraint``.

        ``vertices`` is a ``(k ≥ 3, n)`` array of input-space points lying in
        a 2-D affine subspace; they are stored in convex position.  Exact
        duplicate vertices are dropped here, at construction — repeated
        vertices would otherwise turn into duplicate key-point rows in every
        LP built from this specification.
        """
        vertices = dedupe_exact_vertices(vertices)
        if vertices.shape[0] < 3:
            raise SpecificationError("a planar polytope needs at least three vertices")
        self.entries.append(_PolytopeEntry(vertices, constraint))

    @classmethod
    def from_segments(
        cls, segments: list[LineSegment], constraints: list[OutputConstraint]
    ) -> "PolytopeRepairSpec":
        """Build a specification from parallel lists of segments and constraints."""
        if len(segments) != len(constraints):
            raise SpecificationError("one constraint per segment is required")
        if not segments:
            raise SpecificationError("a polytope specification needs at least one polytope")
        spec = cls()
        for segment, constraint in zip(segments, constraints):
            spec.add_segment(segment, constraint)
        return spec

    def sample_points(self, per_polytope: int, rng: np.random.Generator) -> tuple[np.ndarray, list[OutputConstraint]]:
        """Sample finitely many points from the polytopes (for FT/MFT baselines).

        The paper's baselines cannot consume infinite specifications, so they
        are given randomly sampled points from each polytope (§7, "Fine-Tuning
        Baselines"); this helper produces those samples.
        """
        points: list[np.ndarray] = []
        constraints: list[OutputConstraint] = []
        for entry in self.entries:
            if isinstance(entry.region, LineSegment):
                sampled = entry.region.sample(per_polytope, rng)
            else:
                sampled = _sample_polygon(entry.region, per_polytope, rng)
            points.append(sampled)
            constraints.extend([entry.constraint] * sampled.shape[0])
        return np.vstack(points), constraints


def _sample_polygon(vertices: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform-ish samples from a convex polygon via convex combinations."""
    weights = rng.dirichlet(np.ones(vertices.shape[0]), size=count)
    return weights @ vertices
