"""Batch Jacobian computation for the repair LPs.

The repair algorithms need, for every repair point ``x``, the pair
``(N(x), J_x)`` where ``J_x`` is the Jacobian of the DDNN output with respect
to the repaired value-channel layer's parameters (line 5 of Algorithm 1).
The vectorized multi-point computation lives on
:meth:`repro.core.ddnn.DecoupledNetwork.batch_parameter_jacobian` (the
single-point version on :meth:`~repro.core.ddnn.DecoupledNetwork.parameter_jacobian`);
this module dispatches between the two for a whole specification and provides
a finite-difference checker used by the test-suite to validate the
closed-form Jacobians.
"""

from __future__ import annotations

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.core.specs import PointRepairSpec


def specification_jacobians(
    ddnn: DecoupledNetwork, layer_index: int, spec: PointRepairSpec, *, batched: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Outputs and Jacobians of the DDNN at every point of a specification.

    Returns ``(outputs, jacobians)`` with shapes ``(k, m)`` and
    ``(k, m, num_parameters)`` respectively.  With ``batched=True`` (the
    default) all points are propagated through the two channels in one
    vectorized pass; ``batched=False`` keeps the legacy one-point-at-a-time
    loop, retained for differential testing of the batched engine.
    """
    if batched:
        return ddnn.batch_parameter_jacobian(
            layer_index, spec.points, spec.activation_points
        )
    outputs = []
    jacobians = []
    for index in range(spec.num_points):
        output, jacobian = ddnn.parameter_jacobian(
            layer_index,
            spec.points[index],
            spec.activation_point(index),
        )
        outputs.append(output)
        jacobians.append(jacobian)
    return np.array(outputs), np.array(jacobians)


def finite_difference_jacobian(
    ddnn: DecoupledNetwork,
    layer_index: int,
    value_point: np.ndarray,
    activation_point: np.ndarray | None = None,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Numerically estimate the parameter Jacobian by central differences.

    Only used for testing — it is exact up to floating point for DDNNs since
    the output is affine in the layer's parameters (Theorem 4.5), which is
    precisely what the tests verify against the closed form.
    """
    layer = ddnn.value.layers[layer_index]
    base = layer.get_parameters()
    jacobian = np.zeros((ddnn.output_size, base.size))
    for column in range(base.size):
        perturbed = base.copy()
        perturbed[column] += epsilon
        layer.set_parameters(perturbed)
        plus = ddnn.compute(value_point, activation_point)
        perturbed[column] -= 2 * epsilon
        layer.set_parameters(perturbed)
        minus = ddnn.compute(value_point, activation_point)
        jacobian[:, column] = (plus - minus) / (2 * epsilon)
    layer.set_parameters(base)
    return jacobian
