"""Batch Jacobian computation for the repair LPs.

The repair algorithms need, for every repair point ``x``, the pair
``(N(x), J_x)`` where ``J_x`` is the Jacobian of the DDNN output with respect
to the repaired value-channel layer's parameters (line 5 of Algorithm 1).
The vectorized multi-point computation lives on
:meth:`repro.core.ddnn.DecoupledNetwork.batch_parameter_jacobian` (the
single-point version on :meth:`~repro.core.ddnn.DecoupledNetwork.parameter_jacobian`);
this module dispatches between the two for a whole specification, provides
the shared constraint-row encoder used by :mod:`repro.core.point_repair` and
the engine workers, streams the encoded rows as bounded CSR chunks
(:class:`JacobianChunkStream` — the out-of-core repair data path), and
provides a finite-difference checker used by the test-suite to validate the
closed-form Jacobians.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

import repro.obs as obs
from repro.core.ddnn import DecoupledNetwork
from repro.core.specs import PointRepairSpec

#: Default per-chunk budget for :class:`JacobianChunkStream` — sized so the
#: transient dense (rows × parameters) batch stays comfortably in cache-warm
#: territory while keeping per-chunk Python overhead negligible.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


def specification_jacobians(
    ddnn: DecoupledNetwork, layer_index: int, spec: PointRepairSpec, *, batched: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Outputs and Jacobians of the DDNN at every point of a specification.

    Returns ``(outputs, jacobians)`` with shapes ``(k, m)`` and
    ``(k, m, num_parameters)`` respectively.  With ``batched=True`` (the
    default) all points are propagated through the two channels in one
    vectorized pass; ``batched=False`` keeps the legacy one-point-at-a-time
    loop, retained for differential testing of the batched engine.
    """
    if batched:
        return ddnn.batch_parameter_jacobian(
            layer_index, spec.points, spec.activation_points
        )
    outputs = []
    jacobians = []
    for index in range(spec.num_points):
        output, jacobian = ddnn.parameter_jacobian(
            layer_index,
            spec.points[index],
            spec.activation_point(index),
        )
        outputs.append(output)
        jacobians.append(jacobian)
    return np.array(outputs), np.array(jacobians)


def encode_constraints_batched(
    ddnn: DecoupledNetwork, layer_index: int, spec: PointRepairSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Encode ``A_x (N(x) + J_x Δ) ≤ b_x`` for every spec point at once.

    Returns ``(lhs, rhs)`` such that the repair constraints are exactly
    ``lhs @ Δ ≤ rhs``, with rows in specification order (point 0's rows
    first) — the same layout the legacy per-point loop produces.  The
    Jacobians come from one vectorized multi-point pass, and the per-point
    products ``A_x J_x`` are computed with einsums over groups of points
    sharing a constraint-row count, so no Python loop runs per point.
    """
    outputs, jacobians = ddnn.batch_parameter_jacobian(
        layer_index, spec.points, spec.activation_points
    )
    num_parameters = jacobians.shape[2]
    rows_per_point = np.array(
        [constraint.num_constraints for constraint in spec.constraints], dtype=int
    )
    total_rows = int(rows_per_point.sum())
    row_offsets = np.concatenate([[0], np.cumsum(rows_per_point)[:-1]])
    lhs = np.empty((total_rows, num_parameters))
    rhs = np.empty(total_rows)
    for count in np.unique(rows_per_point):
        group = np.where(rows_per_point == count)[0]
        a = np.stack([spec.constraints[index].a for index in group])  # (g, count, m)
        b = np.stack([spec.constraints[index].b for index in group])  # (g, count)
        target = (row_offsets[group][:, None] + np.arange(count)[None, :]).ravel()
        lhs[target] = np.einsum("gcm,gmp->gcp", a, jacobians[group]).reshape(-1, num_parameters)
        rhs[target] = (b - np.einsum("gcm,gm->gc", a, outputs[group])).ravel()
    return lhs, rhs


def encode_constraints_padded(
    ddnn: DecoupledNetwork, layer_index: int, spec: PointRepairSpec
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`encode_constraints_batched` with the single-point pad applied.

    A single-point encode is padded to a batch of two (the point duplicated)
    and the duplicate's rows dropped: NumPy routes one-row matmuls through a
    different BLAS kernel than larger batches, whose last-bit rounding
    differs — padding keeps every encoded row on the same batched code path
    as a whole-pool encoding.  Since the grouped einsums contract only over
    the output dimension, any batch of ≥2 points produces rows bit-identical
    to the same points inside a larger batch; this wrapper is therefore the
    partition-invariant encoder used by incremental appends, the chunk
    stream, and the engine workers.
    """
    if spec.num_points != 1:
        return encode_constraints_batched(ddnn, layer_index, spec)
    padded = PointRepairSpec(
        points=np.repeat(spec.points, 2, axis=0),
        constraints=list(spec.constraints) * 2,
        activation_points=(
            np.repeat(spec.activation_points, 2, axis=0)
            if spec.activation_points is not None
            else None
        ),
    )
    lhs, rhs = encode_constraints_batched(ddnn, layer_index, padded)
    rows = spec.constraints[0].num_constraints
    return lhs[:rows], rhs[:rows]


def _slice_spec(spec: PointRepairSpec, start: int, stop: int) -> PointRepairSpec:
    """The sub-specification covering points ``[start, stop)``."""
    return PointRepairSpec(
        points=spec.points[start:stop],
        constraints=list(spec.constraints[start:stop]),
        activation_points=(
            spec.activation_points[start:stop]
            if spec.activation_points is not None
            else None
        ),
    )


class JacobianChunkStream:
    """Stream the repair constraint rows of a specification as CSR chunks.

    The in-memory repair path encodes the whole specification into one dense
    ``(total_rows, num_parameters)`` block before LP assembly — O(rows ×
    params) transient memory, the wall the out-of-core pipeline removes.
    This stream instead walks the spec in *point batches* sized so the
    transient dense work stays under ``max_chunk_bytes``; each batch is
    encoded with :func:`encode_constraints_padded` (the partition-invariant
    encoder), cut into per-parameter-slice CSR pieces (each also bounded by
    ``max_chunk_bytes``, and counted in ``repro_jacobian_chunks_total``),
    and the pieces of one batch are reassembled into a full-width CSR row
    block.  Iterating yields ``(csr_block, rhs)`` pairs in specification
    order, ready for :meth:`repro.lp.model.LPSession.append_rows` streaming
    ingestion or repeated ``LPModel.add_leq_block`` calls.

    **Determinism contract.**  The CSR blocks assemble into exactly the same
    standard-form arrays as the one-shot dense encode: batches of ≥2 points
    encode bit-identically to the same points inside a whole-pool encode
    (the einsums contract only over the output dimension; single points are
    padded), column slicing is pure indexing, and vertically stacking
    canonical CSR pieces equals the CSR of the whole.  The differential
    matrix in ``tests/test_out_of_core.py`` pins this.

    With ``engine`` given (a :class:`~repro.engine.engine.ShardedSyrennEngine`
    with ``workers > 1``), point batches are encoded worker-side in bounded
    windows and merged in input order — same bytes, produced in parallel.
    """

    def __init__(
        self,
        ddnn: DecoupledNetwork,
        layer_index: int,
        spec: PointRepairSpec,
        *,
        max_chunk_bytes: int | None = None,
        points_per_batch: int | None = None,
        engine=None,
    ) -> None:
        self.ddnn = ddnn
        self.layer_index = ddnn._check_repairable(layer_index)
        self.spec = spec
        self.engine = engine
        self.max_chunk_bytes = int(
            DEFAULT_CHUNK_BYTES if max_chunk_bytes is None else max_chunk_bytes
        )
        if self.max_chunk_bytes < 1:
            raise ValueError("max_chunk_bytes must be positive")
        self.num_parameters = ddnn.value.layers[self.layer_index].num_parameters
        rows_per_point = np.array(
            [constraint.num_constraints for constraint in spec.constraints], dtype=int
        )
        self._rows_per_point = rows_per_point
        self.total_rows = int(rows_per_point.sum())
        if points_per_batch is None:
            # Transient dense footprint per point: the (m, P) Jacobian plus
            # this point's encoded (rows, P) slice, in float64.
            per_point = 8 * self.num_parameters * (
                ddnn.output_size + int(rows_per_point.max(initial=1))
            )
            points_per_batch = self.max_chunk_bytes // max(1, per_point)
        self.points_per_batch = int(min(max(1, points_per_batch), spec.num_points))
        self._spans = [
            (start, min(start + self.points_per_batch, spec.num_points))
            for start in range(0, spec.num_points, self.points_per_batch)
        ]
        self.chunks_produced = 0

    def __len__(self) -> int:
        """Number of row blocks the stream will yield."""
        return len(self._spans)

    def _column_slices(self, rows: int) -> list[tuple[int, int]]:
        """Parameter-slice spans keeping each CSR piece under budget."""
        width = self.max_chunk_bytes // max(1, 8 * rows)
        width = int(min(max(1, width), self.num_parameters))
        return [
            (start, min(start + width, self.num_parameters))
            for start in range(0, self.num_parameters, width)
        ]

    def _pieces(self, lhs: np.ndarray) -> list[sp.csr_matrix]:
        """One encoded batch as per-parameter-slice canonical CSR pieces."""
        pieces = [
            sp.csr_matrix(lhs[:, start:stop]) for start, stop in self._column_slices(lhs.shape[0])
        ]
        self.chunks_produced += len(pieces)
        if obs.enabled():
            obs.counter(
                "repro_jacobian_chunks_total",
                "CSR Jacobian chunks produced by the streamed repair path, "
                "per (point-batch × parameter-slice), by repaired layer.",
                labels=("layer",),
            ).inc(len(pieces), layer=str(self.layer_index))
        return pieces

    def _assemble(self, lhs: np.ndarray) -> sp.csr_matrix:
        pieces = self._pieces(lhs)
        if len(pieces) == 1:
            return pieces[0]
        block = sp.hstack(pieces).tocsr()
        block.sum_duplicates()
        block.sort_indices()
        return block

    def _encoded_batches(self):
        """Yield the dense ``(lhs, rhs)`` of every point batch, in order."""
        workers = getattr(self.engine, "workers", 1) if self.engine is not None else 1
        if workers <= 1:
            for start, stop in self._spans:
                yield encode_constraints_padded(
                    self.ddnn, self.layer_index, _slice_spec(self.spec, start, stop)
                )
            return
        # Worker-side encoding, dispatched in bounded windows so at most
        # ~2 batches per worker of dense output are in flight at once; the
        # engine's gather already merges results in input order.
        window = 2 * workers
        for group_start in range(0, len(self._spans), window):
            group = self._spans[group_start : group_start + window]
            specs = [_slice_spec(self.spec, start, stop) for start, stop in group]
            yield from self.engine.encode_point_batches(
                self.ddnn, self.layer_index, specs
            )

    def __iter__(self):
        """Yield ``(csr_block, rhs)`` per point batch, in specification order."""
        for lhs, rhs in self._encoded_batches():
            yield self._assemble(lhs), rhs


def finite_difference_jacobians(
    ddnn: DecoupledNetwork,
    layer_index: int,
    value_points: np.ndarray,
    activation_points: np.ndarray | None = None,
    epsilon: float = 1e-6,
    columns: np.ndarray | None = None,
) -> np.ndarray:
    """Numerically estimate parameter Jacobians for a *batch* of points.

    Central differences, two batched forward passes per parameter: every
    point in ``value_points`` shares the same ±ε parameter pokes, so the
    cost is ``2 · len(columns)`` network evaluations total instead of
    ``2 · len(columns)`` *per point* — which is what lets the chunk-stream
    oracle tests afford conv layers.  ``columns`` restricts the estimate to
    a parameter slice (default: all parameters); the result has shape
    ``(num_points, output_size, len(columns))``.

    Only used for testing — it is exact up to floating point for DDNNs since
    the output is affine in the layer's parameters (Theorem 4.5), which is
    precisely what the tests verify against the closed form.
    """
    layer = ddnn.value.layers[layer_index]
    base = layer.get_parameters()
    value_points = np.atleast_2d(np.asarray(value_points, dtype=np.float64))
    if activation_points is not None:
        activation_points = np.atleast_2d(np.asarray(activation_points, dtype=np.float64))
    if columns is None:
        columns = np.arange(base.size)
    columns = np.asarray(columns, dtype=int)
    jacobians = np.zeros((value_points.shape[0], ddnn.output_size, columns.size))
    try:
        for slot, column in enumerate(columns):
            perturbed = base.copy()
            perturbed[column] += epsilon
            layer.set_parameters(perturbed)
            plus = np.atleast_2d(ddnn.compute(value_points, activation_points))
            perturbed[column] -= 2 * epsilon
            layer.set_parameters(perturbed)
            minus = np.atleast_2d(ddnn.compute(value_points, activation_points))
            jacobians[:, :, slot] = (plus - minus) / (2 * epsilon)
    finally:
        layer.set_parameters(base)
    return jacobians


def finite_difference_jacobian(
    ddnn: DecoupledNetwork,
    layer_index: int,
    value_point: np.ndarray,
    activation_point: np.ndarray | None = None,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Single-point wrapper over :func:`finite_difference_jacobians`."""
    return finite_difference_jacobians(
        ddnn,
        layer_index,
        np.asarray(value_point, dtype=np.float64)[None, :],
        None if activation_point is None else
        np.asarray(activation_point, dtype=np.float64)[None, :],
        epsilon=epsilon,
    )[0]
