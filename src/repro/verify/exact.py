"""The exact verifier: certification via linear-region decomposition.

Within one linear region of a piecewise-linear network, the output is an
affine function of the input, so the largest violation of an output
half-space constraint over the region is attained at one of the region's
vertices.  Decomposing a specification region into linear regions
(``transform_line``/``transform_plane`` — the SyReNN substrate) and checking
every linear region's vertices therefore either *certifies* the region or
produces a true counterexample, with nothing in between.

For Decoupled DNNs the decomposition runs on the **activation channel**
(value-channel edits never move linear-region boundaries — Theorem 4.6), and
each vertex is evaluated with the region's interior point pinned as the
activation point, because the DDNN's value channel may be discontinuous
across region boundaries.  Since the activation channel is unchanged by
repair, the decomposition of each specification region is cached across the
repeated verification rounds of a repair driver.

Decomposition can also be delegated to a
:class:`repro.engine.ShardedSyrennEngine`: all of a spec's regions are
decomposed in one batched engine call (sharded, parallel across worker
processes, and cached in the engine's two-tier partition cache).  The
engine's merge order is deterministic, so an engine-backed verification at
any worker count is byte-identical to the serial one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.engine.jobs import contiguous_spans
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from repro.syrenn.regions import LinearRegion, geometry_digest
from repro.utils.serialization import network_fingerprint
from repro.verify.base import (
    DEFAULT_TOLERANCE,
    Box,
    Counterexample,
    RegionCounterexample,
    RegionStatus,
    VerificationReport,
    VerificationSpec,
    Verifier,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine import Engine


class SyrennVerifier(Verifier):
    """Exact verification of line/plane regions via SyReNN decompositions.

    Boxes with at most two varying dimensions are converted to the
    equivalent point/segment/rectangle and verified exactly; boxes varying
    in three or more dimensions are beyond the 1-D/2-D SyReNN substrate and
    are reported ``UNKNOWN``.

    With an ``engine``, region decomposition runs as one batched engine
    call and the engine's partition cache replaces the verifier's private
    in-memory cache; ``cache_partitions=False`` bypasses the engine cache
    for this verifier's calls without clearing it for other consumers.

    ``value_only=True`` enables the **value-only re-verification fast
    path**: when a pass finds the activation network's fingerprint and the
    spec's geometry digests unchanged since the previous pass, it skips
    decomposition (and even cache lookups) entirely and re-evaluates the
    cached vertex stack through the updated network — as one in-process
    batched forward pass, or as a chunked ``evaluate_regions`` engine job
    when an engine is attached.  This is sound exactly because value-channel
    repairs never move linear-region boundaries (Theorem 4.6); the
    incremental repair driver enables the flag for the duration of its run.

    ``region_counterexamples=True`` switches counterexample granularity from
    vertices to linear regions: each violating linear region is reported as
    one :class:`~repro.verify.base.RegionCounterexample` carrying the
    region's full vertex set and interior point instead of one
    :class:`Counterexample` per violating vertex.  Verdicts, margins, and
    ordering are unchanged; the polytope-mode repair driver enables the flag
    for the duration of its run so pooled counterexamples expand to exactly
    the key points Algorithm 2 would generate for the violated regions.
    """

    name = "syrenn"

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        cache_partitions: bool = True,
        engine: Engine | None = None,
        value_only: bool = False,
        region_counterexamples: bool = False,
    ) -> None:
        super().__init__(tolerance)
        self.cache_partitions = cache_partitions
        self.engine = engine
        self.value_only = value_only
        self.region_counterexamples = region_counterexamples
        self.value_only_verifications = 0
        self._cache: dict[tuple, list[LinearRegion]] = {}
        # Single-slot cache backing the value-only fast path: the previous
        # pass's decomposition plus its vertex/activation stacks, keyed by
        # (activation fingerprint, per-region geometry digests).  One slot
        # suffices: a repair driver re-verifies the same spec every round.
        self._value_only_slot: tuple | None = None

    def verify(
        self, network: Network | DecoupledNetwork, spec: VerificationSpec
    ) -> VerificationReport:
        """Certify each region or return counterexamples at region vertices."""
        self._check_spec(network, spec)
        start = time.perf_counter()
        activation_network = (
            network.activation if isinstance(network, DecoupledNetwork) else network
        )
        normalized = [_normalize_region(entry.region) for entry in spec.regions]

        fast_key = None
        if self.value_only:
            # The fast path is gated on the *activation* network fingerprint:
            # value-channel edits (what repair applies) never move linear
            # region boundaries (Theorem 4.6), so an unchanged fingerprint
            # means the cached decomposition is exact for this network too.
            fast_key = (
                network_fingerprint(activation_network),
                tuple(
                    geometry_digest(region) if region is not None else None
                    for region in normalized
                ),
            )
            slot = self._value_only_slot
            if slot is not None and slot.key == fast_key:
                self.value_only_verifications += 1
                return self._verify_value_only(network, spec, slot, start)
        decomposed = self._decompose_all(activation_network, normalized)
        if fast_key is not None:
            self._value_only_slot = _ValueOnlyCache.build(fast_key, decomposed)

        statuses: list[RegionStatus] = []
        margins: list[float] = []
        counterexamples: list[Counterexample] = []
        points_checked = 0
        linear_regions_checked = 0
        for region_index, entry in enumerate(spec.regions):
            linear_regions = decomposed[region_index]
            if linear_regions is None:  # a box the 1-D/2-D substrate cannot decompose
                statuses.append(RegionStatus.UNKNOWN)
                margins.append(float("-inf"))
                continue
            linear_regions_checked += len(linear_regions)
            region_margin = float("-inf")
            region_violated = False
            # Vertex checks stay in-process even with an engine: each linear
            # region is a micro-batch of 2-8 points whose forward pass is far
            # cheaper than shipping it to a worker, and decomposition — not
            # evaluation — dominates exact-verification wall-clock.
            for linear_region in linear_regions:
                points_checked += linear_region.vertices.shape[0]
                outputs = self._evaluate(network, linear_region.vertices, linear_region.interior)
                vertex_margins = entry.constraint.violation_batch(outputs)
                region_margin = max(region_margin, float(np.max(vertex_margins)))
                violating = np.where(vertex_margins > self.tolerance)[0]
                if violating.size == 0:
                    continue
                region_violated = True
                if self.region_counterexamples:
                    worst = int(np.argmax(vertex_margins))
                    counterexamples.append(
                        RegionCounterexample(
                            point=linear_region.vertices[worst].copy(),
                            constraint=entry.constraint,
                            margin=float(vertex_margins[worst]),
                            region_index=region_index,
                            activation_point=linear_region.interior.copy(),
                            vertices=linear_region.vertices.copy(),
                        )
                    )
                    continue
                for vertex_index in violating:
                    counterexamples.append(
                        Counterexample(
                            point=linear_region.vertices[vertex_index].copy(),
                            constraint=entry.constraint,
                            margin=float(vertex_margins[vertex_index]),
                            region_index=region_index,
                            activation_point=linear_region.interior.copy(),
                        )
                    )
            statuses.append(
                RegionStatus.VIOLATED if region_violated else RegionStatus.CERTIFIED
            )
            margins.append(region_margin)
        return self._publish_report(
            VerificationReport(
                verifier=self.name,
                region_statuses=statuses,
                region_margins=margins,
                counterexamples=counterexamples,
                points_checked=points_checked,
                linear_regions_checked=linear_regions_checked,
                seconds=time.perf_counter() - start,
            )
        )

    # ------------------------------------------------------------------
    # The value-only fast path
    # ------------------------------------------------------------------
    def _verify_value_only(
        self, network, spec: VerificationSpec, cache: "_ValueOnlyCache", start: float
    ) -> VerificationReport:
        """Re-verify from cached decomposition with batched evaluation.

        Produces byte-identical verdicts, margins, and counterexamples (in
        identical order) to the slow path: all arithmetic is row-wise — one
        stacked forward pass, one ``violation_batch`` per distinct output
        constraint over its regions' gathered rows, and per-region maxima
        via ``np.maximum.reduceat`` (max is exact, so the grouping cannot
        change any value).
        """
        outputs = self._evaluate_stacked(network, cache.vertices, cache.activations)
        margins_all = np.empty(outputs.shape[0])
        # One batched margin computation per *distinct* constraint: the
        # strengthened ACAS specs reuse a handful of output polytopes across
        # hundreds of regions, so this collapses the per-region Python loop
        # into a few large matmuls.
        groups: dict[bytes, tuple] = {}
        for region_index, entry in enumerate(spec.regions):
            span = cache.region_spans[region_index]
            if span is None:
                continue
            digest = entry.constraint.a.tobytes() + entry.constraint.b.tobytes()
            if digest not in groups:
                groups[digest] = (entry.constraint, [])
            groups[digest][1].append(span)
        for constraint, spans in groups.values():
            rows = np.concatenate([np.arange(s, e) for s, e in spans])
            margins_all[rows] = constraint.violation_batch(outputs[rows])

        supported = [i for i, span in enumerate(cache.region_spans) if span is not None]
        statuses: list[RegionStatus] = [RegionStatus.UNKNOWN] * spec.num_regions
        margins: list[float] = [float("-inf")] * spec.num_regions
        if supported:
            starts = np.array([cache.region_spans[i][0] for i in supported])
            region_maxes = np.maximum.reduceat(margins_all, starts)
            for position, region_index in enumerate(supported):
                margin = float(region_maxes[position])
                margins[region_index] = margin
                statuses[region_index] = (
                    RegionStatus.VIOLATED if margin > self.tolerance else RegionStatus.CERTIFIED
                )

        counterexamples: list[Counterexample] = []
        if self.region_counterexamples:
            # One counterexample per violating *linear region*: rows of a
            # linear region are contiguous in the cached stack (they were
            # built region by region), so the per-region grouping is exactly
            # the contiguous spans of the row → interior mapping — the same
            # regions, in the same order, as the slow path walks.
            for span_start, span_stop in contiguous_spans(cache.row_interior):
                span_margins = margins_all[span_start:span_stop]
                worst = int(np.argmax(span_margins))
                if span_margins[worst] <= self.tolerance:
                    continue
                region_index = int(cache.row_region[span_start])
                counterexamples.append(
                    RegionCounterexample(
                        point=cache.vertices[span_start + worst].copy(),
                        constraint=spec.regions[region_index].constraint,
                        margin=float(span_margins[worst]),
                        region_index=region_index,
                        activation_point=cache.interiors[
                            cache.row_interior[span_start]
                        ].copy(),
                        vertices=cache.vertices[span_start:span_stop].copy(),
                    )
                )
        else:
            for row in np.where(margins_all > self.tolerance)[0]:
                region_index = int(cache.row_region[row])
                counterexamples.append(
                    Counterexample(
                        point=cache.vertices[row].copy(),
                        constraint=spec.regions[region_index].constraint,
                        margin=float(margins_all[row]),
                        region_index=region_index,
                        activation_point=cache.interiors[cache.row_interior[row]].copy(),
                    )
                )
        return self._publish_report(
            VerificationReport(
                verifier=self.name,
                region_statuses=statuses,
                region_margins=margins,
                counterexamples=counterexamples,
                points_checked=int(cache.vertices.shape[0]),
                linear_regions_checked=cache.total_linear_regions,
                seconds=time.perf_counter() - start,
                value_only=True,
            )
        )

    # ------------------------------------------------------------------
    def _evaluate_stacked(
        self, network, vertex_stack: np.ndarray, activation_stack: np.ndarray
    ) -> np.ndarray:
        """Outputs for every cached vertex, with per-row pinned activations.

        With an engine the stack runs as one batched ``evaluate_regions``
        job (chunked across the worker pool); without one it is a single
        in-process batched forward pass — either way replacing the
        per-linear-region evaluation loop of the slow path.
        """
        if vertex_stack.shape[0] == 0:
            return np.zeros((0, network.output_size))
        if self.engine is not None:
            return self.engine.evaluate_regions(network, vertex_stack, activation_stack)
        if isinstance(network, DecoupledNetwork):
            return np.atleast_2d(network.compute(vertex_stack, activation_stack))
        return np.atleast_2d(network.compute(vertex_stack))

    def _decompose_all(
        self, activation_network: Network, normalized: list
    ) -> list[list[LinearRegion] | None]:
        """Linear regions per normalized spec region (``None`` for 3D+ boxes)."""
        supported = [index for index, region in enumerate(normalized) if region is not None]
        decomposed: list[list[LinearRegion] | None] = [None] * len(normalized)
        if self.engine is not None:
            results = self.engine.decompose(
                activation_network,
                [normalized[index] for index in supported],
                use_cache=self.cache_partitions,
            )
            for index, linear_regions in zip(supported, results):
                decomposed[index] = linear_regions
            return decomposed
        fingerprint = network_fingerprint(activation_network) if self.cache_partitions else None
        for index in supported:
            region = normalized[index]
            decomposed[index] = self._decompose(
                activation_network, region, (geometry_digest(region), fingerprint)
            )
        return decomposed

    def _decompose(
        self, activation_network: Network, region, cache_key: tuple
    ) -> list[LinearRegion]:
        if self.cache_partitions and cache_key in self._cache:
            return self._cache[cache_key]
        if isinstance(region, LineSegment):
            partition = transform_line(activation_network, region)
            linear_regions = [
                LinearRegion(vertices=piece.vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        elif isinstance(region, np.ndarray) and region.ndim == 1:
            # A fully degenerate box: a single point is its own linear region.
            linear_regions = [LinearRegion(vertices=region[None, :], interior=region)]
        else:
            partition = transform_plane(activation_network, region)
            linear_regions = [
                LinearRegion(vertices=piece.input_vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        if self.cache_partitions:
            self._cache[cache_key] = linear_regions
        return linear_regions


@dataclass
class _ValueOnlyCache:
    """Everything the value-only fast path needs from a decomposition.

    Rows follow the slow path's iteration order (spec regions in order,
    linear regions in order, vertices in order), so batched results map back
    by row index.  ``row_region``/``row_interior`` resolve a violating row to
    its spec region and its linear region's interior point; unsupported
    (3D+ box) regions have a ``None`` span and contribute no rows.
    """

    key: tuple
    vertices: np.ndarray
    activations: np.ndarray
    region_spans: list[tuple[int, int] | None]
    row_region: np.ndarray
    row_interior: np.ndarray
    interiors: list[np.ndarray]
    total_linear_regions: int

    @classmethod
    def build(cls, key: tuple, decomposed: list) -> "_ValueOnlyCache":
        vertices: list[np.ndarray] = []
        activations: list[np.ndarray] = []
        region_spans: list[tuple[int, int] | None] = []
        row_region: list[int] = []
        row_interior: list[int] = []
        interiors: list[np.ndarray] = []
        total_linear_regions = 0
        cursor = 0
        for region_index, linear_regions in enumerate(decomposed):
            if linear_regions is None:
                region_spans.append(None)
                continue
            total_linear_regions += len(linear_regions)
            span_start = cursor
            for linear_region in linear_regions:
                count = linear_region.vertices.shape[0]
                vertices.append(linear_region.vertices)
                activations.append(
                    np.broadcast_to(linear_region.interior, linear_region.vertices.shape)
                )
                row_region.extend([region_index] * count)
                row_interior.extend([len(interiors)] * count)
                interiors.append(linear_region.interior)
                cursor += count
            region_spans.append((span_start, cursor))
        if vertices:
            vertex_stack = np.vstack(vertices)
            activation_stack = np.ascontiguousarray(np.vstack(activations))
        else:
            vertex_stack = np.zeros((0, 0))
            activation_stack = np.zeros((0, 0))
        return cls(
            key=key,
            vertices=vertex_stack,
            activations=activation_stack,
            region_spans=region_spans,
            row_region=np.array(row_region, dtype=int),
            row_interior=np.array(row_interior, dtype=int),
            interiors=interiors,
            total_linear_regions=total_linear_regions,
        )


def _normalize_region(region) -> LineSegment | np.ndarray | None:
    """Map a spec region onto what the SyReNN substrate can decompose.

    Returns a :class:`LineSegment`, a plane-vertex array, a single point
    (1-D array, for fully degenerate boxes), or ``None`` when the region is
    a box varying in three or more dimensions.
    """
    if isinstance(region, LineSegment):
        return region
    if isinstance(region, Box):
        varying = region.varying_dimensions()
        if varying.size == 0:
            return region.lower.copy()
        if varying.size == 1:
            end = region.lower.copy()
            end[varying[0]] = region.upper[varying[0]]
            return LineSegment(region.lower, end)
        if varying.size == 2:
            corners = []
            for corner in ((0, 0), (1, 0), (1, 1), (0, 1)):
                point = region.lower.copy()
                for position, dim in enumerate(varying):
                    point[dim] = region.upper[dim] if corner[position] else region.lower[dim]
                corners.append(point)
            return np.array(corners)
        return None
    return np.atleast_2d(np.asarray(region, dtype=np.float64))
