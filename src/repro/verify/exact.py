"""The exact verifier: certification via linear-region decomposition.

Within one linear region of a piecewise-linear network, the output is an
affine function of the input, so the largest violation of an output
half-space constraint over the region is attained at one of the region's
vertices.  Decomposing a specification region into linear regions
(``transform_line``/``transform_plane`` — the SyReNN substrate) and checking
every linear region's vertices therefore either *certifies* the region or
produces a true counterexample, with nothing in between.

For Decoupled DNNs the decomposition runs on the **activation channel**
(value-channel edits never move linear-region boundaries — Theorem 4.6), and
each vertex is evaluated with the region's interior point pinned as the
activation point, because the DDNN's value channel may be discontinuous
across region boundaries.  Since the activation channel is unchanged by
repair, the decomposition of each specification region is cached across the
repeated verification rounds of a repair driver.

Decomposition can also be delegated to a
:class:`repro.engine.ShardedSyrennEngine`: all of a spec's regions are
decomposed in one batched engine call (sharded, parallel across worker
processes, and cached in the engine's two-tier partition cache).  The
engine's merge order is deterministic, so an engine-backed verification at
any worker count is byte-identical to the serial one.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.syrenn.line import transform_line
from repro.syrenn.plane import transform_plane
from repro.syrenn.regions import LinearRegion, geometry_digest
from repro.utils.serialization import network_fingerprint
from repro.verify.base import (
    DEFAULT_TOLERANCE,
    Box,
    Counterexample,
    RegionStatus,
    VerificationReport,
    VerificationSpec,
    Verifier,
)


class SyrennVerifier(Verifier):
    """Exact verification of line/plane regions via SyReNN decompositions.

    Boxes with at most two varying dimensions are converted to the
    equivalent point/segment/rectangle and verified exactly; boxes varying
    in three or more dimensions are beyond the 1-D/2-D SyReNN substrate and
    are reported ``UNKNOWN``.

    With an ``engine``, region decomposition runs as one batched engine
    call and the engine's partition cache replaces the verifier's private
    in-memory cache; ``cache_partitions=False`` bypasses the engine cache
    for this verifier's calls without clearing it for other consumers.
    """

    name = "syrenn"

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        cache_partitions: bool = True,
        engine=None,
    ) -> None:
        super().__init__(tolerance)
        self.cache_partitions = cache_partitions
        self.engine = engine
        self._cache: dict[tuple, list[LinearRegion]] = {}

    def verify(
        self, network: Network | DecoupledNetwork, spec: VerificationSpec
    ) -> VerificationReport:
        """Certify each region or return counterexamples at region vertices."""
        self._check_spec(network, spec)
        start = time.perf_counter()
        activation_network = (
            network.activation if isinstance(network, DecoupledNetwork) else network
        )
        normalized = [_normalize_region(entry.region) for entry in spec.regions]
        decomposed = self._decompose_all(activation_network, normalized)

        statuses: list[RegionStatus] = []
        margins: list[float] = []
        counterexamples: list[Counterexample] = []
        points_checked = 0
        linear_regions_checked = 0
        for region_index, entry in enumerate(spec.regions):
            linear_regions = decomposed[region_index]
            if linear_regions is None:  # a box the 1-D/2-D substrate cannot decompose
                statuses.append(RegionStatus.UNKNOWN)
                margins.append(float("-inf"))
                continue
            linear_regions_checked += len(linear_regions)
            region_margin = float("-inf")
            region_violated = False
            # Vertex checks stay in-process even with an engine: each linear
            # region is a micro-batch of 2-8 points whose forward pass is far
            # cheaper than shipping it to a worker, and decomposition — not
            # evaluation — dominates exact-verification wall-clock.
            for linear_region in linear_regions:
                points_checked += linear_region.vertices.shape[0]
                outputs = self._evaluate(network, linear_region.vertices, linear_region.interior)
                vertex_margins = entry.constraint.violation_batch(outputs)
                region_margin = max(region_margin, float(np.max(vertex_margins)))
                for vertex_index in np.where(vertex_margins > self.tolerance)[0]:
                    region_violated = True
                    counterexamples.append(
                        Counterexample(
                            point=linear_region.vertices[vertex_index].copy(),
                            constraint=entry.constraint,
                            margin=float(vertex_margins[vertex_index]),
                            region_index=region_index,
                            activation_point=linear_region.interior.copy(),
                        )
                    )
            statuses.append(
                RegionStatus.VIOLATED if region_violated else RegionStatus.CERTIFIED
            )
            margins.append(region_margin)
        return VerificationReport(
            verifier=self.name,
            region_statuses=statuses,
            region_margins=margins,
            counterexamples=counterexamples,
            points_checked=points_checked,
            linear_regions_checked=linear_regions_checked,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _decompose_all(
        self, activation_network: Network, normalized: list
    ) -> list[list[LinearRegion] | None]:
        """Linear regions per normalized spec region (``None`` for 3D+ boxes)."""
        supported = [index for index, region in enumerate(normalized) if region is not None]
        decomposed: list[list[LinearRegion] | None] = [None] * len(normalized)
        if self.engine is not None:
            results = self.engine.decompose(
                activation_network,
                [normalized[index] for index in supported],
                use_cache=self.cache_partitions,
            )
            for index, linear_regions in zip(supported, results):
                decomposed[index] = linear_regions
            return decomposed
        fingerprint = network_fingerprint(activation_network) if self.cache_partitions else None
        for index in supported:
            region = normalized[index]
            decomposed[index] = self._decompose(
                activation_network, region, (geometry_digest(region), fingerprint)
            )
        return decomposed

    def _decompose(
        self, activation_network: Network, region, cache_key: tuple
    ) -> list[LinearRegion]:
        if self.cache_partitions and cache_key in self._cache:
            return self._cache[cache_key]
        if isinstance(region, LineSegment):
            partition = transform_line(activation_network, region)
            linear_regions = [
                LinearRegion(vertices=piece.vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        elif isinstance(region, np.ndarray) and region.ndim == 1:
            # A fully degenerate box: a single point is its own linear region.
            linear_regions = [LinearRegion(vertices=region[None, :], interior=region)]
        else:
            partition = transform_plane(activation_network, region)
            linear_regions = [
                LinearRegion(vertices=piece.input_vertices, interior=piece.interior_point)
                for piece in partition.regions
            ]
        if self.cache_partitions:
            self._cache[cache_key] = linear_regions
        return linear_regions


def _normalize_region(region) -> LineSegment | np.ndarray | None:
    """Map a spec region onto what the SyReNN substrate can decompose.

    Returns a :class:`LineSegment`, a plane-vertex array, a single point
    (1-D array, for fully degenerate boxes), or ``None`` when the region is
    a box varying in three or more dimensions.
    """
    if isinstance(region, LineSegment):
        return region
    if isinstance(region, Box):
        varying = region.varying_dimensions()
        if varying.size == 0:
            return region.lower.copy()
        if varying.size == 1:
            end = region.lower.copy()
            end[varying[0]] = region.upper[varying[0]]
            return LineSegment(region.lower, end)
        if varying.size == 2:
            corners = []
            for corner in ((0, 0), (1, 0), (1, 1), (0, 1)):
                point = region.lower.copy()
                for position, dim in enumerate(varying):
                    point[dim] = region.upper[dim] if corner[position] else region.lower[dim]
                corners.append(point)
            return np.array(corners)
        return None
    return np.atleast_2d(np.asarray(region, dtype=np.float64))
