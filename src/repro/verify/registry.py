"""A declarative verifier registry: verifiers by name, parameters as JSON.

The repair driver takes a :class:`~repro.verify.base.Verifier` *instance*,
which is the right interface in-process — but a job submitted to the repair
daemon is a JSON document, and JSON cannot carry an instance.  The registry
closes that gap: a job names its verifier declaratively::

    {"verifier": {"kind": "syrenn", "value_only": true}}

and :func:`make_verifier` turns the dictionary into the configured instance
(attaching the daemon's shared engine, which is a runtime resource and never
part of the wire format).

The built-in kinds are ``"syrenn"`` (:class:`~repro.verify.exact.SyrennVerifier`),
``"grid"`` (:class:`~repro.verify.sampling.GridVerifier`), and ``"random"``
(:class:`~repro.verify.sampling.RandomVerifier`); :func:`register_verifier`
adds project-specific ones without touching the daemon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import SpecificationError
from repro.verify.base import Verifier
from repro.verify.exact import SyrennVerifier
from repro.verify.sampling import GridVerifier, RandomVerifier

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine import Engine

_REGISTRY: dict[str, type[Verifier]] = {}


def register_verifier(kind: str, cls: type[Verifier]) -> None:
    """Register a verifier class under ``kind`` (overwrites an existing kind).

    The class must be constructible from keyword arguments that are all
    JSON-representable, plus the optional ``engine`` runtime keyword.
    """
    if not (isinstance(cls, type) and issubclass(cls, Verifier)):
        raise SpecificationError(f"{cls!r} is not a Verifier subclass")
    _REGISTRY[kind] = cls


def verifier_kinds() -> list[str]:
    """The registered kinds, sorted (what a job's ``kind`` may name)."""
    return sorted(_REGISTRY)


def make_verifier(
    kind: str = "syrenn", *, engine: Engine | None = None, **params
) -> Verifier:
    """Build the verifier named ``kind`` from JSON-representable ``params``.

    ``engine`` is threaded into the constructor separately because it is a
    runtime resource, not configuration: the daemon passes its shared warm
    engine here while the job's verifier dictionary stays serializable.
    """
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise SpecificationError(
            f"unknown verifier kind {kind!r}; registered kinds: {verifier_kinds()}"
        )
    try:
        return cls(engine=engine, **params)
    except TypeError as error:
        raise SpecificationError(
            f"bad parameters for verifier kind {kind!r}: {error}"
        ) from error


register_verifier(SyrennVerifier.name, SyrennVerifier)
register_verifier(GridVerifier.name, GridVerifier)
register_verifier(RandomVerifier.name, RandomVerifier)
