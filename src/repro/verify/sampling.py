"""Sampling-based verifiers: dense grids and seeded Monte-Carlo.

Both verifiers evaluate the network on finitely many points of each region
and report any point whose output violates the region's constraint.  Neither
can *certify* a region — a clean sweep only upgrades the region to
``UNKNOWN`` — but they are fast, work on arbitrary-dimensional boxes (which
the exact verifier cannot decompose), and in practice find the same
violations the exact verifier proves.

The hot path is fully batched: all sample points of a region go through the
network in one forward pass and through
:meth:`repro.polytope.hpolytope.HPolytope.violation_batch` in one matmul.

Both verifiers also accept an ``engine``
(:class:`repro.engine.ShardedSyrennEngine`), which routes the per-region
sweeps through the engine's worker pool.  :class:`GridVerifier` keeps its
points deterministic, so engine and serial sweeps are identical;
:class:`RandomVerifier` switches to *worker-side* sampling with per-region
seeds derived from its root seed (:func:`repro.utils.rng.derive_seeds`), so
its results are identical at any worker count — though, by design, not to
the engine-less sequential stream.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.ddnn import DecoupledNetwork
from repro.nn.network import Network
from repro.polytope.segment import LineSegment
from repro.utils.rng import derive_seeds, ensure_rng
from repro.verify.base import (
    DEFAULT_TOLERANCE,
    Box,
    Counterexample,
    RegionStatus,
    VerificationReport,
    VerificationSpec,
    Verifier,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine import Engine


def grid_region_points(region, resolution: int, max_points: int) -> np.ndarray:
    """The deterministic dense sweep points of one region."""
    if isinstance(region, LineSegment):
        return region.points_at(np.linspace(0.0, 1.0, resolution))
    if isinstance(region, Box):
        return _box_lattice(region, resolution, max_points)
    return _polygon_grid(np.atleast_2d(np.asarray(region)), resolution)


def random_region_points(region, num_samples: int, rng: np.random.Generator) -> np.ndarray:
    """``num_samples`` random points of one region, drawn from ``rng``.

    Module-level so the engine's worker processes can draw the points
    themselves from a per-region derived seed.
    """
    if isinstance(region, LineSegment):
        return region.sample(num_samples, rng)
    if isinstance(region, Box):
        return rng.uniform(region.lower, region.upper, size=(num_samples, region.dimension))
    vertices = np.atleast_2d(np.asarray(region))
    weights = rng.dirichlet(np.ones(vertices.shape[0]), size=num_samples)
    return weights @ vertices


class _SamplingVerifier(Verifier):
    """Shared verify() skeleton: subclasses only choose the sample points."""

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        max_counterexamples_per_region: int | None = 32,
        engine: Engine | None = None,
        certify_exhaustive: bool = False,
    ) -> None:
        super().__init__(tolerance)
        self.max_counterexamples_per_region = max_counterexamples_per_region
        self.engine = engine
        self.certify_exhaustive = bool(certify_exhaustive)

    def _sample_region(self, region) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _region_is_exhaustive(region) -> bool:
        """Whether the sample set *is* the region (a single-point box).

        A fully-degenerate :class:`Box` (no varying dimension) contains
        exactly one point, and every sampling subclass evaluates exactly
        that point — so a clean sweep is a proof, not a heuristic, and
        ``certify_exhaustive`` may upgrade the verdict to ``CERTIFIED``.
        """
        return isinstance(region, Box) and region.varying_dimensions().size == 0

    def _sweep_degenerate(self, network: Network | DecoupledNetwork, spec: VerificationSpec):
        """One stacked forward pass over an all-degenerate-box spec.

        Pointwise specifications (e.g. the ImageNet-style classification
        workload) carry tens of thousands of single-point regions; sweeping
        them one region-sized forward pass at a time wastes minutes on
        Python/BLAS dispatch overhead.  Here every region contributes its
        single point to chunked batch evaluations, then the per-region
        ``(points, outputs)`` pairs are re-sliced out — same points, same
        verdict structure, orders of magnitude fewer passes.
        """
        # Chunked at 1024 points: convolutional networks expand each chunk
        # into im2col patch tensors, so the chunk size bounds the sweep's
        # transient memory.
        stacked = np.vstack([entry.region.lower[None, :] for entry in spec.regions])
        outputs = np.vstack(
            [
                np.atleast_2d(self._evaluate(network, stacked[start : start + 1024]))
                for start in range(0, stacked.shape[0], 1024)
            ]
        )
        return (
            (stacked[index : index + 1].copy(), outputs[index : index + 1])
            for index in range(stacked.shape[0])
        )

    def _sweep(self, network: Network | DecoupledNetwork, spec: VerificationSpec):
        """Per-region (points, outputs) pairs; subclasses may route via the engine.

        Without an engine this *streams* — one region's samples and outputs
        are alive at a time, as before the engine existed — so large
        engine-less sweeps keep their old peak memory.  The engine path
        materializes all regions up front: that is the batch the worker
        pool parallelizes over.
        """
        if self.certify_exhaustive and all(
            self._region_is_exhaustive(entry.region) for entry in spec.regions
        ):
            return self._sweep_degenerate(network, spec)
        if self.engine is not None:
            points_list = [self._sample_region(entry.region) for entry in spec.regions]
            return zip(points_list, self.engine.evaluate_batches(network, points_list))
        return (
            (points, self._evaluate(network, points))
            for points in (self._sample_region(entry.region) for entry in spec.regions)
        )

    def verify(
        self, network: Network | DecoupledNetwork, spec: VerificationSpec
    ) -> VerificationReport:
        """Evaluate sampled points per region and report violations.

        Sampling cannot certify in general — a clean sweep only upgrades a
        region to ``UNKNOWN``.  The one exception is ``certify_exhaustive``:
        a fully-degenerate box holds a single point, the sweep evaluates
        exactly that point, and a clean result is therefore a proof.
        """
        self._check_spec(network, spec)
        start = time.perf_counter()
        statuses: list[RegionStatus] = []
        margins: list[float] = []
        counterexamples: list[Counterexample] = []
        points_checked = 0
        sweep = self._sweep(network, spec)
        for (region_index, entry), (points, outputs) in zip(enumerate(spec.regions), sweep):
            points_checked += points.shape[0]
            point_margins = entry.constraint.violation_batch(outputs)
            margins.append(float(np.max(point_margins)))
            violating = np.where(point_margins > self.tolerance)[0]
            if violating.size == 0:
                statuses.append(
                    RegionStatus.CERTIFIED
                    if self.certify_exhaustive
                    and self._region_is_exhaustive(entry.region)
                    else RegionStatus.UNKNOWN
                )
                continue
            statuses.append(RegionStatus.VIOLATED)
            # Keep the worst offenders first; cap to keep reports small.
            order = violating[np.argsort(-point_margins[violating])]
            if self.max_counterexamples_per_region is not None:
                order = order[: self.max_counterexamples_per_region]
            counterexamples.extend(
                Counterexample(
                    point=points[index].copy(),
                    constraint=entry.constraint,
                    margin=float(point_margins[index]),
                    region_index=region_index,
                )
                for index in order
            )
        return self._publish_report(
            VerificationReport(
                verifier=self.name,
                region_statuses=statuses,
                region_margins=margins,
                counterexamples=counterexamples,
                points_checked=points_checked,
                seconds=time.perf_counter() - start,
            )
        )


class GridVerifier(_SamplingVerifier):
    """Dense deterministic sweep over each region.

    Segments get ``resolution`` equally spaced points; planar polygons get a
    barycentric grid of roughly ``resolution²/2`` points per fan triangle;
    boxes get an axis-aligned lattice capped at ``max_points_per_region``
    total points (the per-axis count shrinks with the number of varying
    dimensions, so high-dimensional boxes stay tractable).

    With an ``engine``, region evaluations run as engine jobs; the sweep
    points are computed deterministically either way, so the engine-backed
    sweep produces byte-identical reports.

    ``certify_exhaustive=True`` lets the verifier *certify* single-point
    regions (fully-degenerate boxes): the sweep evaluates the region's only
    point, so a clean result is a proof.  Pointwise specifications made
    entirely of such regions additionally take a stacked fast path — one
    chunked forward pass over all regions instead of one pass per region —
    which is what makes driver-certified repairs of 10⁴–10⁵-point
    classification specs tractable.
    """

    name = "grid"

    def __init__(
        self,
        resolution: int = 16,
        *,
        tolerance: float = DEFAULT_TOLERANCE,
        max_points_per_region: int = 4096,
        max_counterexamples_per_region: int | None = 32,
        engine: Engine | None = None,
        certify_exhaustive: bool = False,
    ) -> None:
        super().__init__(tolerance, max_counterexamples_per_region, engine, certify_exhaustive)
        if resolution < 2:
            raise ValueError("grid resolution must be at least 2")
        self.resolution = int(resolution)
        self.max_points_per_region = int(max_points_per_region)

    def _sample_region(self, region) -> np.ndarray:
        return grid_region_points(region, self.resolution, self.max_points_per_region)


class RandomVerifier(_SamplingVerifier):
    """Seeded Monte-Carlo search with per-point margin tracking.

    Each call draws fresh samples, so repeated rounds of a repair driver
    probe different points while the whole run stays reproducible from the
    seed.  Serially the verifier consumes one sequential generator; with an
    ``engine`` each region draws worker-side from a seed derived from
    ``(root seed, sweep index, region index)``, which makes the results a
    pure function of the seed — identical at any worker count.
    """

    name = "random"

    def __init__(
        self,
        num_samples: int = 256,
        seed: int | np.random.Generator | None = 0,
        *,
        tolerance: float = DEFAULT_TOLERANCE,
        max_counterexamples_per_region: int | None = 32,
        engine: Engine | None = None,
    ) -> None:
        super().__init__(tolerance, max_counterexamples_per_region, engine)
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        self.num_samples = int(num_samples)
        self._rng = ensure_rng(seed)
        # Root seed for worker-side sampling; for a non-integer seed it is
        # drawn lazily so the engine-less sequential stream stays untouched.
        self._root_seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        self._sweep_index = 0

    def _engine_root_seed(self) -> int:
        if self._root_seed is None:
            self._root_seed = int(self._rng.integers(0, 2**63 - 1))
        return self._root_seed

    def _sample_region(self, region) -> np.ndarray:
        return random_region_points(region, self.num_samples, self._rng)

    def _sweep(self, network: Network | DecoupledNetwork, spec: VerificationSpec):
        if self.engine is None:
            return super()._sweep(network, spec)
        seeds = derive_seeds(
            self._engine_root_seed(), spec.num_regions, stream=self._sweep_index
        )
        self._sweep_index += 1
        return iter(
            self.engine.sample_regions(
                network, [entry.region for entry in spec.regions], seeds, self.num_samples
            )
        )


def _box_lattice(box: Box, resolution: int, max_points: int) -> np.ndarray:
    """An axis-aligned lattice over the box's varying dimensions."""
    varying = box.varying_dimensions()
    if varying.size == 0:
        return box.lower[None, :].copy()
    # Cap the total lattice size by shrinking the per-axis count.
    per_axis = min(resolution, max(2, int(max_points ** (1.0 / varying.size))))
    axes = [np.linspace(box.lower[dim], box.upper[dim], per_axis) for dim in varying]
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.broadcast_to(box.lower, (mesh[0].size, box.dimension)).copy()
    for position, dim in enumerate(varying):
        points[:, dim] = mesh[position].ravel()
    return points


def _polygon_grid(vertices: np.ndarray, resolution: int) -> np.ndarray:
    """A barycentric grid over a convex polygon, triangulated as a fan.

    Fan triangle ``i`` is ``(v0, vi, vi+1)``; it shares the edge
    ``(v0, vi)`` — the points with zero weight on ``vi+1`` — with triangle
    ``i-1``, so those points are dropped from every triangle after the
    first to avoid evaluating the network twice on the same inputs.
    """
    steps = np.linspace(0.0, 1.0, resolution)
    full = np.array(
        [(1.0 - u - v, u, v) for u in steps for v in steps if u + v <= 1.0 + 1e-12]
    )
    interior = full[full[:, 2] > 1e-12]
    points = []
    for second in range(1, vertices.shape[0] - 1):
        triangle = np.stack([vertices[0], vertices[second], vertices[second + 1]])
        weights = full if second == 1 else interior
        points.append(weights @ triangle)
    return np.vstack(points)
