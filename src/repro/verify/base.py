"""The verification interface: specs, counterexamples, and reports.

The repair algorithms assume someone already knows *where* the network is
wrong — the specification is handed to them fully formed.  This module is
the other half of the loop: a :class:`VerificationSpec` names input regions
and the output polytope each must map into, and a :class:`Verifier` searches
those regions for violations, returning structured
:class:`Counterexample` objects and a :class:`VerificationReport` that
accounts for every region as *certified*, *violated*, or *unknown*.

Three verifiers implement the interface (each in its own module):

* :class:`repro.verify.sampling.GridVerifier` — dense deterministic sweep;
  finds violations, never certifies.
* :class:`repro.verify.sampling.RandomVerifier` — seeded Monte-Carlo with
  per-point margin tracking; finds violations, never certifies.
* :class:`repro.verify.exact.SyrennVerifier` — exact over line/plane regions
  by decomposing them into linear regions (the SyReNN substrate) and
  checking each region's vertices; certifies or produces true
  counterexamples.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.ddnn import DecoupledNetwork
from repro.core.specs import PolytopeRepairSpec, dedupe_exact_vertices
from repro.exceptions import SpecificationError
from repro.nn.network import Network
from repro.polytope.hpolytope import HPolytope
from repro.polytope.segment import LineSegment

#: A sampled output violates its constraint when the margin exceeds this.
DEFAULT_TOLERANCE = 1e-7


class RegionStatus(enum.Enum):
    """Verification verdict for one specification region."""

    CERTIFIED = "certified"  #: proven free of violations (exact verifiers only)
    VIOLATED = "violated"    #: at least one concrete counterexample found
    UNKNOWN = "unknown"      #: no violation found, but nothing proven


@dataclass(frozen=True)
class Box:
    """An axis-aligned input box ``{x : lower ≤ x ≤ upper}`` (dims may be degenerate)."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", np.asarray(self.lower, dtype=np.float64).ravel())
        object.__setattr__(self, "upper", np.asarray(self.upper, dtype=np.float64).ravel())
        if self.lower.shape != self.upper.shape:
            raise SpecificationError("box lower and upper bounds must have the same shape")
        if np.any(self.lower > self.upper):
            raise SpecificationError("box lower bound exceeds upper bound")

    @property
    def dimension(self) -> int:
        """Dimension of the ambient input space."""
        return self.lower.size

    def varying_dimensions(self, tolerance: float = 1e-12) -> np.ndarray:
        """Indices of dimensions with non-degenerate extent."""
        return np.where(self.upper - self.lower > tolerance)[0]


#: An input region is a segment, a convex planar polygon (vertex array), or a box.
InputRegion = LineSegment | np.ndarray | Box


@dataclass
class SpecRegion:
    """One input region paired with the output constraint it must map into."""

    region: InputRegion
    constraint: HPolytope
    name: str = ""


@dataclass
class VerificationSpec:
    """Finitely many input regions, each with an output polytope to satisfy."""

    regions: list[SpecRegion] = field(default_factory=list)

    @property
    def num_regions(self) -> int:
        """Number of regions in the specification."""
        return len(self.regions)

    def add_segment(self, segment: LineSegment, constraint: HPolytope, name: str = "") -> None:
        """Require every point of ``segment`` to map into ``constraint``."""
        self.regions.append(SpecRegion(segment, constraint, name))

    def add_plane(self, vertices, constraint: HPolytope, name: str = "") -> None:
        """Require every point of the convex planar polygon to map into ``constraint``.

        Exact duplicate vertices are dropped, mirroring
        :meth:`repro.core.specs.PolytopeRepairSpec.add_plane`, so a
        verification spec and the repair spec it was built from decompose
        the same geometry (and share partition-cache entries).
        """
        vertices = dedupe_exact_vertices(vertices)
        if vertices.shape[0] < 3:
            raise SpecificationError("a planar region needs at least three vertices")
        self.regions.append(SpecRegion(vertices, constraint, name))

    def add_box(self, lower, upper, constraint: HPolytope, name: str = "") -> None:
        """Require every point of the axis-aligned box to map into ``constraint``."""
        self.regions.append(SpecRegion(Box(lower, upper), constraint, name))

    @classmethod
    def from_polytope_spec(cls, spec: PolytopeRepairSpec) -> "VerificationSpec":
        """Adopt the regions of a repair specification as verification targets."""
        verification = cls()
        for entry in spec.entries:
            verification.regions.append(SpecRegion(entry.region, entry.constraint))
        return verification

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """The spec as a JSON-ready dictionary (the job daemon's wire format).

        Round-trips exactly: arrays are emitted as nested lists of Python
        floats, whose ``repr`` serialization recovers the identical float64
        bit patterns, so a spec that travelled through JSON decomposes — and
        repairs — byte-identically to the original.
        """
        return {"regions": [_region_entry_dict(entry) for entry in self.regions]}

    @classmethod
    def from_dict(cls, payload: dict) -> "VerificationSpec":
        """Rebuild a spec from :meth:`as_dict` output (or hand-written JSON)."""
        if not isinstance(payload, dict) or "regions" not in payload:
            raise SpecificationError('a spec payload needs a "regions" list')
        spec = cls()
        for index, entry in enumerate(payload["regions"]):
            try:
                spec.regions.append(_region_entry_from_dict(entry))
            except (KeyError, TypeError) as error:
                raise SpecificationError(
                    f"malformed spec region {index}: {error}"
                ) from error
        return spec

    def __post_init__(self) -> None:
        if not isinstance(self.regions, list):
            raise SpecificationError("regions must be a list of SpecRegion entries")


@dataclass
class Counterexample:
    """A concrete input on which the network violates its region's constraint.

    Attributes
    ----------
    point:
        The violating input.
    constraint:
        The output polytope the network was supposed to map ``point`` into.
    margin:
        The largest constraint violation at ``point`` (strictly positive).
    region_index:
        Index of the specification region the point came from.
    activation_point:
        For counterexamples produced by the exact verifier: an interior
        point of the linear region the violating vertex belongs to.  Feeding
        it to the DDNN's activation channel pins the vertex to that region's
        activation pattern (Appendix B of the paper), which is what makes
        repairing the vertex equivalent to repairing the whole region.
    """

    point: np.ndarray
    constraint: HPolytope
    margin: float
    region_index: int
    activation_point: np.ndarray | None = None

    def __post_init__(self) -> None:
        # Coerce to float64 like VerificationSpec does for its bounds: a
        # sampling verifier sweeping a float32 dataset must not leak float32
        # into LP assembly or into the counterexample pool's dedup keys
        # (float32 and float64 bytes of the same value never collide).
        self.point = np.ascontiguousarray(np.asarray(self.point, dtype=np.float64))
        if self.activation_point is not None:
            self.activation_point = np.ascontiguousarray(
                np.asarray(self.activation_point, dtype=np.float64)
            )
        self.margin = float(self.margin)

    def resolved_activation_point(self) -> np.ndarray:
        """The activation point, defaulting to the point itself."""
        return self.point if self.activation_point is None else self.activation_point

    def key_points(self) -> np.ndarray:
        """The repair points this counterexample expands to (``(k, n)``).

        A plain counterexample is its own single key point; a
        :class:`RegionCounterexample` expands to every vertex of its linear
        region (Algorithm 2's per-region reduction).
        """
        return self.point[None, :]


@dataclass
class RegionCounterexample(Counterexample):
    """A whole violating *linear region*, as produced in polytope-CEGIS mode.

    Where a plain :class:`Counterexample` names one violating vertex, a
    region counterexample carries the full vertex set of the linear region
    it came from, with the region's interior point as the (mandatory)
    activation point.  Repairing all of its :meth:`key_points` under that
    pinned activation pattern repairs the *entire* region (Theorem 4.6 +
    Appendix B) — which is what lets the CEGIS driver certify infinite
    polytope specifications rather than individual points.

    ``point``/``margin`` describe the worst-violating vertex, so the pool's
    margin accounting and the driver's reporting work unchanged.
    """

    vertices: np.ndarray | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.vertices is None:
            raise SpecificationError("a region counterexample needs its region's vertices")
        if self.activation_point is None:
            raise SpecificationError(
                "a region counterexample needs an interior (activation) point"
            )
        self.vertices = np.ascontiguousarray(
            np.atleast_2d(np.asarray(self.vertices, dtype=np.float64))
        )

    def key_points(self) -> np.ndarray:
        """Every vertex of the violating linear region."""
        return self.vertices


@dataclass
class VerificationReport:
    """Outcome of one verification pass over a specification.

    ``region_statuses[i]`` is the verdict for ``spec.regions[i]``;
    ``region_margins[i]`` is the largest constraint margin observed on that
    region (≤ 0 everywhere the verifier looked means no violation seen).
    """

    verifier: str
    region_statuses: list[RegionStatus]
    region_margins: list[float]
    counterexamples: list[Counterexample] = field(default_factory=list)
    points_checked: int = 0
    linear_regions_checked: int = 0
    seconds: float = 0.0
    #: Whether this pass took the value-only fast path: the activation
    #: network was unchanged since the last pass, so cached linear-region
    #: vertex sets were re-evaluated without any decomposition work.
    value_only: bool = False

    @property
    def num_regions(self) -> int:
        """Number of specification regions covered by this report."""
        return len(self.region_statuses)

    @property
    def num_certified(self) -> int:
        """Regions proven free of violations."""
        return sum(status is RegionStatus.CERTIFIED for status in self.region_statuses)

    @property
    def num_violated(self) -> int:
        """Regions with at least one concrete counterexample."""
        return sum(status is RegionStatus.VIOLATED for status in self.region_statuses)

    @property
    def num_unknown(self) -> int:
        """Regions with no violation found but no proof either."""
        return sum(status is RegionStatus.UNKNOWN for status in self.region_statuses)

    @property
    def certified(self) -> bool:
        """Whether *every* region was proven free of violations."""
        return self.num_regions > 0 and self.num_certified == self.num_regions

    @property
    def clean(self) -> bool:
        """Whether no region was found violated (weaker than :attr:`certified`)."""
        return self.num_violated == 0

    @property
    def max_margin(self) -> float:
        """Largest margin observed across all regions (-inf for an empty report)."""
        return max(self.region_margins, default=float("-inf"))

    def as_dict(self) -> dict:
        """A JSON-ready summary (statuses and counts, not the raw points)."""
        return {
            "verifier": self.verifier,
            "num_regions": self.num_regions,
            "num_certified": self.num_certified,
            "num_violated": self.num_violated,
            "num_unknown": self.num_unknown,
            "certified": self.certified,
            "num_counterexamples": len(self.counterexamples),
            "points_checked": self.points_checked,
            "linear_regions_checked": self.linear_regions_checked,
            "max_margin": self.max_margin,
            "seconds": self.seconds,
            "value_only": self.value_only,
        }


class Verifier(abc.ABC):
    """Common interface of the violation-search implementations."""

    #: Short name used in reports and driver round records.
    name: str = "base"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        self.tolerance = float(tolerance)

    @abc.abstractmethod
    def verify(
        self, network: Network | DecoupledNetwork, spec: VerificationSpec
    ) -> VerificationReport:
        """Search ``spec``'s regions for violations by ``network``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _evaluate(
        network: Network | DecoupledNetwork,
        points: np.ndarray,
        activation_point: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched network outputs, optionally under a pinned activation point."""
        points = np.atleast_2d(points)
        if isinstance(network, DecoupledNetwork) and activation_point is not None:
            activations = np.broadcast_to(activation_point, points.shape)
            return np.atleast_2d(network.compute(points, np.ascontiguousarray(activations)))
        return np.atleast_2d(network.compute(points))

    def _publish_report(self, report: VerificationReport) -> VerificationReport:
        """Mirror a finished report into the metrics registry (pass-through).

        Every verifier routes its return value through here; with telemetry
        disabled this is a single branch and the report comes back untouched
        either way.
        """
        if obs.enabled():
            obs.counter(
                "repro_verify_runs_total",
                "Verification passes by verifier and fast-path use.",
                labels=("verifier", "value_only"),
            ).inc(
                verifier=report.verifier,
                value_only="true" if report.value_only else "false",
            )
            obs.histogram(
                "repro_verify_seconds",
                "Wall-clock seconds per verification pass, by verifier.",
                labels=("verifier",),
            ).observe(report.seconds, verifier=report.verifier)
            statuses = obs.counter(
                "repro_verify_regions_total",
                "Spec-region verdicts across all verification passes.",
                labels=("status",),
            )
            for status, count in (
                ("certified", report.num_certified),
                ("violated", report.num_violated),
                ("unknown", report.num_unknown),
            ):
                if count:
                    statuses.inc(count, status=status)
        return report

    def _check_spec(self, network: Network | DecoupledNetwork, spec: VerificationSpec) -> None:
        """Validate region dimensions against the network's input size."""
        if spec.num_regions == 0:
            raise SpecificationError("the verification specification has no regions")
        for index, entry in enumerate(spec.regions):
            dimension = _region_dimension(entry.region)
            if dimension != network.input_size:
                raise SpecificationError(
                    f"region {index} has input dimension {dimension}, "
                    f"network expects {network.input_size}"
                )
            if entry.constraint.output_dimension != network.output_size:
                raise SpecificationError(
                    f"region {index}'s constraint is over dimension "
                    f"{entry.constraint.output_dimension}, network outputs "
                    f"{network.output_size}"
                )


def _region_dimension(region: InputRegion) -> int:
    if isinstance(region, LineSegment):
        return region.dimension
    if isinstance(region, Box):
        return region.dimension
    return np.atleast_2d(np.asarray(region)).shape[1]


def _region_entry_dict(entry: SpecRegion) -> dict:
    region = entry.region
    if isinstance(region, LineSegment):
        payload: dict = {
            "kind": "segment",
            "start": region.start.tolist(),
            "end": region.end.tolist(),
        }
    elif isinstance(region, Box):
        payload = {"kind": "box", "lower": region.lower.tolist(), "upper": region.upper.tolist()}
    else:
        payload = {
            "kind": "plane",
            "vertices": np.atleast_2d(np.asarray(region, dtype=np.float64)).tolist(),
        }
    return {
        "region": payload,
        "constraint": {"a": entry.constraint.a.tolist(), "b": entry.constraint.b.tolist()},
        "name": entry.name,
    }


def _region_entry_from_dict(entry: dict) -> SpecRegion:
    constraint = HPolytope(entry["constraint"]["a"], entry["constraint"]["b"])
    payload = entry["region"]
    kind = payload["kind"]
    if kind == "segment":
        region: InputRegion = LineSegment(payload["start"], payload["end"])
    elif kind == "box":
        region = Box(payload["lower"], payload["upper"])
    elif kind == "plane":
        # SpecRegion is built directly (not via add_plane) so the stored
        # vertex array — already deduplicated when the spec was authored —
        # is reproduced exactly, keeping geometry digests and partition-cache
        # keys identical across the wire.
        region = np.atleast_2d(np.asarray(payload["vertices"], dtype=np.float64))
    else:
        raise SpecificationError(f"unknown region kind {kind!r}")
    return SpecRegion(region, constraint, entry.get("name", ""))
