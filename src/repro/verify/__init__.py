"""Violation search and certification for repair specifications.

* :mod:`repro.verify.base` — the :class:`Verifier` interface,
  :class:`VerificationSpec` (regions + output constraints),
  :class:`Counterexample` / :class:`RegionCounterexample` (a whole violating
  linear region, used by the polytope-mode driver), and
  :class:`VerificationReport` with certified/violated/unknown region
  accounting.
* :mod:`repro.verify.sampling` — :class:`GridVerifier` (dense deterministic
  sweep) and :class:`RandomVerifier` (seeded Monte-Carlo); they find
  violations but never certify.
* :mod:`repro.verify.exact` — :class:`SyrennVerifier`, exact over
  line/plane regions via the SyReNN linear-region decomposition; certifies
  regions or returns true counterexamples.
* :mod:`repro.verify.registry` — :func:`make_verifier`, the declarative
  factory that builds any registered verifier from a JSON-representable
  ``(kind, params)`` description.
"""

from repro.verify.base import (
    Box,
    Counterexample,
    RegionCounterexample,
    RegionStatus,
    SpecRegion,
    VerificationReport,
    VerificationSpec,
    Verifier,
)
from repro.verify.exact import SyrennVerifier
from repro.verify.registry import make_verifier, register_verifier, verifier_kinds
from repro.verify.sampling import GridVerifier, RandomVerifier

__all__ = [
    "Box",
    "Counterexample",
    "RegionCounterexample",
    "RegionStatus",
    "SpecRegion",
    "VerificationReport",
    "VerificationSpec",
    "Verifier",
    "GridVerifier",
    "RandomVerifier",
    "SyrennVerifier",
    "make_verifier",
    "register_verifier",
    "verifier_kinds",
]
