"""Solver status codes shared by all LP backends."""

from __future__ import annotations

import enum


class LPStatus(enum.Enum):
    """Outcome of an LP solve.

    ``OPTIMAL``
        A feasible, objective-optimal solution was found.
    ``INFEASIBLE``
        The constraints admit no solution (the repair does not exist for
        the chosen layer).
    ``UNBOUNDED``
        The objective can decrease without bound (never expected for the
        norm-minimization objectives used here, but reported faithfully).
    ``ERROR``
        The backend failed for a numerical or internal reason.
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        """True when a usable solution is available."""
        return self is LPStatus.OPTIMAL
