"""A from-scratch dense two-phase simplex LP solver.

This backend exists so the package's core algorithm (LP-based repair) does
not depend on any external solver implementation.  It converts the general
standard form produced by :class:`repro.lp.model.LPModel` into equational
form (all variables non-negative, equality constraints only) and runs a
textbook two-phase primal simplex with Bland's anti-cycling rule.

It is intended for the small-to-medium LPs that appear in unit tests,
examples, and ablation benchmarks; the scipy/HiGHS backend remains the
default for the large experiment LPs.

Conversion to equational form
-----------------------------
Every free variable ``x`` is split into ``x = x⁺ - x⁻`` with
``x⁺, x⁻ ≥ 0``.  Finite lower bounds are shifted into the constant term,
finite upper bounds become extra ``≤`` rows, and every ``≤`` row receives a
slack variable.  Phase 1 minimizes the sum of artificial variables; if that
optimum is positive the problem is infeasible.  Phase 2 minimizes the real
objective starting from the Phase-1 basis.
"""

from __future__ import annotations

import numpy as np

from repro.lp.backends.base import LPBackend
from repro.lp.model import LPSolution
from repro.lp.status import LPStatus

_TOLERANCE = 1e-9


class _EquationalProblem:
    """Equational-form data plus the mapping back to original variables."""

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray, recover) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.recover = recover


def _to_equational(c, a_ub, b_ub, a_eq, b_eq, bounds) -> _EquationalProblem:
    """Convert the LPModel standard form into ``min c@y, A y = b, y >= 0``."""
    n = c.shape[0]
    lower = bounds[:, 0].copy()
    upper = bounds[:, 1].copy()

    # Variable substitution: for each original variable produce columns in the
    # non-negative space.  We use the generic split x = x+ - x- and then add
    # bound rows for finite bounds; this is less economical than shifting but
    # much simpler to reason about and adequate for the solver's scope.
    plus = np.arange(n)
    minus = np.arange(n, 2 * n)
    width = 2 * n

    def expand(matrix: np.ndarray) -> np.ndarray:
        expanded = np.zeros((matrix.shape[0], width))
        expanded[:, plus] = matrix
        expanded[:, minus] = -matrix
        return expanded

    ub_rows = [expand(a_ub)] if a_ub.size else []
    ub_rhs = [b_ub] if a_ub.size else []

    # Finite bounds become inequality rows on the split variables.
    finite_upper = np.where(np.isfinite(upper))[0]
    if finite_upper.size:
        rows = np.zeros((finite_upper.size, width))
        rows[np.arange(finite_upper.size), plus[finite_upper]] = 1.0
        rows[np.arange(finite_upper.size), minus[finite_upper]] = -1.0
        ub_rows.append(rows)
        ub_rhs.append(upper[finite_upper])
    finite_lower = np.where(np.isfinite(lower))[0]
    if finite_lower.size:
        rows = np.zeros((finite_lower.size, width))
        rows[np.arange(finite_lower.size), plus[finite_lower]] = -1.0
        rows[np.arange(finite_lower.size), minus[finite_lower]] = 1.0
        ub_rows.append(rows)
        ub_rhs.append(-lower[finite_lower])

    a_ub_full = np.vstack(ub_rows) if ub_rows else np.zeros((0, width))
    b_ub_full = np.concatenate(ub_rhs) if ub_rhs else np.zeros(0)
    a_eq_full = expand(a_eq) if a_eq.size else np.zeros((0, width))
    b_eq_full = b_eq if a_eq.size else np.zeros(0)

    # Add slack variables for the inequality rows.
    num_slack = a_ub_full.shape[0]
    total = width + num_slack
    a_rows = []
    b_values = []
    if num_slack:
        block = np.hstack([a_ub_full, np.eye(num_slack)])
        a_rows.append(block)
        b_values.append(b_ub_full)
    if a_eq_full.shape[0]:
        block = np.hstack([a_eq_full, np.zeros((a_eq_full.shape[0], num_slack))])
        a_rows.append(block)
        b_values.append(b_eq_full)

    a_full = np.vstack(a_rows) if a_rows else np.zeros((0, total))
    b_full = np.concatenate(b_values) if b_values else np.zeros(0)

    c_full = np.zeros(total)
    c_full[plus] = c
    c_full[minus] = -c

    def recover(y: np.ndarray) -> np.ndarray:
        return y[plus] - y[minus]

    return _EquationalProblem(a_full, b_full, c_full, recover)


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the simplex tableau on (row, col) in place."""
    tableau[row] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > 0:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col


def _simplex_iterate(tableau: np.ndarray, basis: np.ndarray, num_cols: int, max_iter: int) -> str:
    """Run primal simplex iterations on the tableau.

    The last row of the tableau holds the (negated) reduced costs and the
    last column holds the right-hand side.  Returns ``"optimal"`` or
    ``"unbounded"`` (or ``"iteration_limit"``).
    """
    num_rows = tableau.shape[0] - 1
    for _ in range(max_iter):
        costs = tableau[-1, :num_cols]
        entering_candidates = np.where(costs < -_TOLERANCE)[0]
        if entering_candidates.size == 0:
            return "optimal"
        entering = int(entering_candidates[0])  # Bland's rule

        column = tableau[:num_rows, entering]
        positive = np.where(column > _TOLERANCE)[0]
        if positive.size == 0:
            return "unbounded"
        ratios = tableau[positive, -1] / column[positive]
        best = np.min(ratios)
        # Bland's rule tie-break: smallest basis variable index.
        ties = positive[np.where(np.abs(ratios - best) <= _TOLERANCE * (1 + abs(best)))[0]]
        leaving = int(ties[np.argmin(basis[ties])])
        _pivot(tableau, basis, leaving, entering)
    return "iteration_limit"


class SimplexBackend(LPBackend):
    """Two-phase dense primal simplex with Bland's rule."""

    name = "simplex"

    def __init__(self, max_iterations: int = 20000) -> None:
        self.max_iterations = max_iterations

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds) -> LPSolution:
        # The tableau works on dense arrays; sparse inputs from the batched
        # repair engine are densified lazily here, at the last moment.
        problem = _to_equational(
            np.asarray(c, dtype=float),
            self.as_dense(a_ub),
            np.asarray(b_ub, dtype=float),
            self.as_dense(a_eq),
            np.asarray(b_eq, dtype=float),
            np.asarray(bounds, dtype=float),
        )
        a, b, costs = problem.a.copy(), problem.b.copy(), problem.c.copy()
        num_rows, num_cols = a.shape

        if num_rows == 0:
            # No constraints: optimum is at the origin of the split space
            # unless the objective is non-zero in a direction with no bound,
            # in which case it is unbounded.
            if np.any(costs != 0):
                return LPSolution(LPStatus.UNBOUNDED, message="no constraints")
            return LPSolution(LPStatus.OPTIMAL, problem.recover(np.zeros(num_cols)), 0.0)

        # Make every right-hand side non-negative before adding artificials.
        negative = b < 0
        a[negative] *= -1
        b[negative] *= -1

        # Phase 1: add one artificial variable per row.
        tableau = np.zeros((num_rows + 1, num_cols + num_rows + 1))
        tableau[:num_rows, :num_cols] = a
        tableau[:num_rows, num_cols:num_cols + num_rows] = np.eye(num_rows)
        tableau[:num_rows, -1] = b
        basis = np.arange(num_cols, num_cols + num_rows)
        # Phase-1 objective: sum of artificials; express reduced costs.
        tableau[-1, :num_cols] = -a.sum(axis=0)
        tableau[-1, -1] = -b.sum()

        outcome = _simplex_iterate(tableau, basis, num_cols + num_rows, self.max_iterations)
        if outcome == "iteration_limit":
            return LPSolution(LPStatus.ERROR, message="phase-1 iteration limit reached")
        phase1_objective = -tableau[-1, -1]
        if phase1_objective > 1e-6:
            return LPSolution(LPStatus.INFEASIBLE, message="phase-1 optimum positive")

        # Drive any artificial variables out of the basis if possible.
        for row in range(num_rows):
            if basis[row] >= num_cols:
                pivot_candidates = np.where(np.abs(tableau[row, :num_cols]) > _TOLERANCE)[0]
                if pivot_candidates.size:
                    _pivot(tableau, basis, row, int(pivot_candidates[0]))

        # Phase 2: restore the true objective over the current basis.
        phase2 = np.zeros((num_rows + 1, num_cols + 1))
        phase2[:num_rows, :num_cols] = tableau[:num_rows, :num_cols]
        phase2[:num_rows, -1] = tableau[:num_rows, -1]
        phase2[-1, :num_cols] = costs
        # Zero out reduced costs of basic variables.
        for row in range(num_rows):
            col = basis[row]
            if col < num_cols and abs(phase2[-1, col]) > 0:
                phase2[-1] -= phase2[-1, col] * phase2[row]

        outcome = _simplex_iterate(phase2, basis, num_cols, self.max_iterations)
        if outcome == "iteration_limit":
            return LPSolution(LPStatus.ERROR, message="phase-2 iteration limit reached")
        if outcome == "unbounded":
            return LPSolution(LPStatus.UNBOUNDED, message="phase-2 unbounded")

        solution = np.zeros(num_cols)
        for row in range(num_rows):
            if basis[row] < num_cols:
                solution[basis[row]] = phase2[row, -1]
        x = problem.recover(solution)
        return LPSolution(
            LPStatus.OPTIMAL,
            values=x,
            objective=float(np.dot(c, x)),
            message="simplex optimal",
        )
