"""A from-scratch dense two-phase simplex LP solver.

This backend exists so the package's core algorithm (LP-based repair) does
not depend on any external solver implementation.  It converts the general
standard form produced by :class:`repro.lp.model.LPModel` into equational
form (all variables non-negative, equality constraints only) and runs a
textbook two-phase primal simplex with Bland's anti-cycling rule.

It is intended for the small-to-medium LPs that appear in unit tests,
examples, and ablation benchmarks; the scipy/HiGHS backend remains the
default for the large experiment LPs.

Conversion to equational form
-----------------------------
Every free variable ``x`` is split into ``x = x⁺ - x⁻`` with
``x⁺, x⁻ ≥ 0``.  Finite lower bounds are shifted into the constant term,
finite upper bounds become extra ``≤`` rows, and every ``≤`` row receives a
slack variable.  Phase 1 minimizes the sum of artificial variables; if that
optimum is positive the problem is infeasible.  Phase 2 minimizes the real
objective starting from the Phase-1 basis.

Warm starts
-----------
An optimal solve returns a :class:`~repro.lp.model.WarmStart` whose payload
records the final basis as *labels* — ``x⁺``/``x⁻`` columns by variable
index, slack columns by the row they slacken — plus the equational layout
they were minted under.  A later solve of the same model with extra ``≤``
rows (the incremental CEGIS case) maps the labels into the new layout,
extends the basis with the new rows' slacks (the classic dual-feasible
extension), canonicalizes the tableau with one dense solve against the
basis matrix, and restores primal feasibility with **dual simplex** pivots —
skipping Phase 1 entirely.  Any incompatibility (different variables,
changed bounds, a singular basis) falls back to the cold two-phase path
silently.  Warm starts change the pivot path, so on a degenerate optimal
face they may return a *different* optimal vertex than a cold solve
(``warm_start_is_exact`` is ``False``).
"""

from __future__ import annotations

import numpy as np

from repro.lp.backends.base import LPBackend
from repro.lp.model import LPSolution, WarmStart
from repro.lp.status import LPStatus

_TOLERANCE = 1e-9


class _EquationalProblem:
    """Equational-form data plus the mapping back to original variables.

    The layout fields describe how columns and rows are ordered — which is
    what warm-start basis labels are resolved against:

    * columns: ``[x⁺ (n), x⁻ (n), slacks (one per ≤ row)]``;
    * ``≤`` rows: ``[a_ub rows, finite-upper-bound rows, finite-lower-bound
      rows]``, each with its slack in the same order;
    * equality rows last.
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        recover,
        *,
        n: int,
        num_a_ub: int,
        finite_upper: np.ndarray,
        finite_lower: np.ndarray,
        num_eq: int,
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.recover = recover
        self.n = n
        self.num_a_ub = num_a_ub
        self.finite_upper = finite_upper
        self.finite_lower = finite_lower
        self.num_eq = num_eq

    @property
    def num_slack(self) -> int:
        return self.num_a_ub + self.finite_upper.size + self.finite_lower.size

    def column_label(self, column: int) -> tuple[str, int]:
        """A layout-independent label for an equational column."""
        if column < self.n:
            return ("plus", column)
        if column < 2 * self.n:
            return ("minus", column - self.n)
        slack = column - 2 * self.n
        if slack < self.num_a_ub:
            return ("slack_ub", slack)
        slack -= self.num_a_ub
        if slack < self.finite_upper.size:
            return ("slack_bu", slack)
        return ("slack_bl", slack - self.finite_upper.size)

    def label_column(self, label: tuple[str, int]) -> int | None:
        """Resolve a label minted under an older (row-subset) layout."""
        kind, index = label
        if kind == "plus":
            return index if index < self.n else None
        if kind == "minus":
            return self.n + index if index < self.n else None
        if kind == "slack_ub":
            return 2 * self.n + index if index < self.num_a_ub else None
        if kind == "slack_bu":
            if index >= self.finite_upper.size:
                return None
            return 2 * self.n + self.num_a_ub + index
        if kind == "slack_bl":
            if index >= self.finite_lower.size:
                return None
            return 2 * self.n + self.num_a_ub + self.finite_upper.size + index
        return None


def _to_equational(c, a_ub, b_ub, a_eq, b_eq, bounds) -> _EquationalProblem:
    """Convert the LPModel standard form into ``min c@y, A y = b, y >= 0``."""
    n = c.shape[0]
    lower = bounds[:, 0].copy()
    upper = bounds[:, 1].copy()

    # Variable substitution: for each original variable produce columns in the
    # non-negative space.  We use the generic split x = x+ - x- and then add
    # bound rows for finite bounds; this is less economical than shifting but
    # much simpler to reason about and adequate for the solver's scope.
    plus = np.arange(n)
    minus = np.arange(n, 2 * n)
    width = 2 * n

    def expand(matrix: np.ndarray) -> np.ndarray:
        expanded = np.zeros((matrix.shape[0], width))
        expanded[:, plus] = matrix
        expanded[:, minus] = -matrix
        return expanded

    ub_rows = [expand(a_ub)] if a_ub.size else []
    ub_rhs = [b_ub] if a_ub.size else []

    # Finite bounds become inequality rows on the split variables.
    finite_upper = np.where(np.isfinite(upper))[0]
    if finite_upper.size:
        rows = np.zeros((finite_upper.size, width))
        rows[np.arange(finite_upper.size), plus[finite_upper]] = 1.0
        rows[np.arange(finite_upper.size), minus[finite_upper]] = -1.0
        ub_rows.append(rows)
        ub_rhs.append(upper[finite_upper])
    finite_lower = np.where(np.isfinite(lower))[0]
    if finite_lower.size:
        rows = np.zeros((finite_lower.size, width))
        rows[np.arange(finite_lower.size), plus[finite_lower]] = -1.0
        rows[np.arange(finite_lower.size), minus[finite_lower]] = 1.0
        ub_rows.append(rows)
        ub_rhs.append(-lower[finite_lower])

    a_ub_full = np.vstack(ub_rows) if ub_rows else np.zeros((0, width))
    b_ub_full = np.concatenate(ub_rhs) if ub_rhs else np.zeros(0)
    a_eq_full = expand(a_eq) if a_eq.size else np.zeros((0, width))
    b_eq_full = b_eq if a_eq.size else np.zeros(0)

    # Add slack variables for the inequality rows.
    num_slack = a_ub_full.shape[0]
    total = width + num_slack
    a_rows = []
    b_values = []
    if num_slack:
        block = np.hstack([a_ub_full, np.eye(num_slack)])
        a_rows.append(block)
        b_values.append(b_ub_full)
    if a_eq_full.shape[0]:
        block = np.hstack([a_eq_full, np.zeros((a_eq_full.shape[0], num_slack))])
        a_rows.append(block)
        b_values.append(b_eq_full)

    a_full = np.vstack(a_rows) if a_rows else np.zeros((0, total))
    b_full = np.concatenate(b_values) if b_values else np.zeros(0)

    c_full = np.zeros(total)
    c_full[plus] = c
    c_full[minus] = -c

    def recover(y: np.ndarray) -> np.ndarray:
        return y[plus] - y[minus]

    return _EquationalProblem(
        a_full,
        b_full,
        c_full,
        recover,
        n=n,
        num_a_ub=int(a_ub.shape[0]) if a_ub.size else 0,
        finite_upper=finite_upper,
        finite_lower=finite_lower,
        num_eq=int(a_eq_full.shape[0]),
    )


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the simplex tableau on (row, col) in place."""
    tableau[row] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > 0:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col


def _simplex_iterate(
    tableau: np.ndarray, basis: np.ndarray, num_cols: int, max_iter: int
) -> tuple[str, int]:
    """Run primal simplex iterations on the tableau.

    The last row of the tableau holds the (negated) reduced costs and the
    last column holds the right-hand side.  Returns ``(outcome, iterations)``
    where outcome is ``"optimal"``, ``"unbounded"``, or ``"iteration_limit"``.
    """
    num_rows = tableau.shape[0] - 1
    for iteration in range(max_iter):
        costs = tableau[-1, :num_cols]
        entering_candidates = np.where(costs < -_TOLERANCE)[0]
        if entering_candidates.size == 0:
            return "optimal", iteration
        entering = int(entering_candidates[0])  # Bland's rule

        column = tableau[:num_rows, entering]
        positive = np.where(column > _TOLERANCE)[0]
        if positive.size == 0:
            return "unbounded", iteration
        ratios = tableau[positive, -1] / column[positive]
        best = np.min(ratios)
        # Bland's rule tie-break: smallest basis variable index.
        ties = positive[np.where(np.abs(ratios - best) <= _TOLERANCE * (1 + abs(best)))[0]]
        leaving = int(ties[np.argmin(basis[ties])])
        _pivot(tableau, basis, leaving, entering)
    return "iteration_limit", max_iter


def _dual_simplex_iterate(
    tableau: np.ndarray, basis: np.ndarray, num_cols: int, max_iter: int
) -> tuple[str, int]:
    """Restore primal feasibility of a dual-feasible tableau in place.

    The tableau must carry non-negative reduced costs in its last row (up to
    tolerance); rows with negative right-hand sides are pivoted out.
    Returns ``("optimal" | "infeasible" | "iteration_limit", iterations)``.
    """
    num_rows = tableau.shape[0] - 1
    for iteration in range(max_iter):
        rhs = tableau[:num_rows, -1]
        negative = np.where(rhs < -_TOLERANCE)[0]
        if negative.size == 0:
            return "optimal", iteration
        # Bland-style leaving choice: smallest basic variable index.
        leaving = int(negative[np.argmin(basis[negative])])
        row_entries = tableau[leaving, :num_cols]
        candidates = np.where(row_entries < -_TOLERANCE)[0]
        if candidates.size == 0:
            # The row reads  (nonnegative coefficients) @ y = negative rhs
            # over y >= 0: the added constraints are unsatisfiable.
            return "infeasible", iteration
        costs = tableau[-1, candidates]
        ratios = costs / (-row_entries[candidates])
        best = np.min(ratios)
        ties = candidates[np.where(np.abs(ratios - best) <= _TOLERANCE * (1 + abs(best)))[0]]
        entering = int(ties[0])  # smallest column index on ties
        _pivot(tableau, basis, leaving, entering)
    return "iteration_limit", max_iter


class SimplexBackend(LPBackend):
    """Two-phase dense primal simplex with Bland's rule (dual-simplex warm starts)."""

    name = "simplex"

    def __init__(self, max_iterations: int = 20000) -> None:
        self.max_iterations = max_iterations

    @property
    def warm_start_is_exact(self) -> bool:
        """Hot starts pivot differently, so a degenerate face may resolve elsewhere."""
        return False

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None) -> LPSolution:
        # The tableau works on dense arrays; sparse inputs from the batched
        # repair engine are densified lazily here, at the last moment.
        problem = _to_equational(
            np.asarray(c, dtype=float),
            self.as_dense(a_ub),
            np.asarray(b_ub, dtype=float),
            self.as_dense(a_eq),
            np.asarray(b_eq, dtype=float),
            np.asarray(bounds, dtype=float),
        )
        if warm_start is not None and warm_start.payload is not None:
            hot = self._warm_solve(problem, warm_start.payload, np.asarray(c, dtype=float))
            if hot is not None:
                return hot
        return self._cold_solve(problem, np.asarray(c, dtype=float))

    # ------------------------------------------------------------------
    # Cold path: textbook two-phase primal simplex
    # ------------------------------------------------------------------
    def _cold_solve(self, problem: _EquationalProblem, c: np.ndarray) -> LPSolution:
        a, b, costs = problem.a.copy(), problem.b.copy(), problem.c.copy()
        num_rows, num_cols = a.shape

        if num_rows == 0:
            # No constraints: optimum is at the origin of the split space
            # unless the objective is non-zero in a direction with no bound,
            # in which case it is unbounded.
            if np.any(costs != 0):
                return LPSolution(LPStatus.UNBOUNDED, message="no constraints")
            return LPSolution(
                LPStatus.OPTIMAL, problem.recover(np.zeros(num_cols)), 0.0, iterations=0
            )

        # Make every right-hand side non-negative before adding artificials.
        negative = b < 0
        a[negative] *= -1
        b[negative] *= -1

        # Phase 1: add one artificial variable per row.
        tableau = np.zeros((num_rows + 1, num_cols + num_rows + 1))
        tableau[:num_rows, :num_cols] = a
        tableau[:num_rows, num_cols:num_cols + num_rows] = np.eye(num_rows)
        tableau[:num_rows, -1] = b
        basis = np.arange(num_cols, num_cols + num_rows)
        # Phase-1 objective: sum of artificials; express reduced costs.
        tableau[-1, :num_cols] = -a.sum(axis=0)
        tableau[-1, -1] = -b.sum()

        outcome, phase1_iterations = _simplex_iterate(
            tableau, basis, num_cols + num_rows, self.max_iterations
        )
        if outcome == "iteration_limit":
            return LPSolution(LPStatus.ERROR, message="phase-1 iteration limit reached")
        phase1_objective = -tableau[-1, -1]
        if phase1_objective > 1e-6:
            return LPSolution(
                LPStatus.INFEASIBLE,
                message="phase-1 optimum positive",
                iterations=phase1_iterations,
            )

        # Drive any artificial variables out of the basis if possible.
        for row in range(num_rows):
            if basis[row] >= num_cols:
                pivot_candidates = np.where(np.abs(tableau[row, :num_cols]) > _TOLERANCE)[0]
                if pivot_candidates.size:
                    _pivot(tableau, basis, row, int(pivot_candidates[0]))

        # Phase 2: restore the true objective over the current basis.
        phase2 = np.zeros((num_rows + 1, num_cols + 1))
        phase2[:num_rows, :num_cols] = tableau[:num_rows, :num_cols]
        phase2[:num_rows, -1] = tableau[:num_rows, -1]
        phase2[-1, :num_cols] = costs
        # Zero out reduced costs of basic variables.
        for row in range(num_rows):
            col = basis[row]
            if col < num_cols and abs(phase2[-1, col]) > 0:
                phase2[-1] -= phase2[-1, col] * phase2[row]

        outcome, phase2_iterations = _simplex_iterate(
            phase2, basis, num_cols, self.max_iterations
        )
        iterations = phase1_iterations + phase2_iterations
        if outcome == "iteration_limit":
            return LPSolution(LPStatus.ERROR, message="phase-2 iteration limit reached")
        if outcome == "unbounded":
            return LPSolution(
                LPStatus.UNBOUNDED, message="phase-2 unbounded", iterations=iterations
            )
        return self._extract(
            problem, phase2, basis, c, iterations, warm_used=False, message="simplex optimal"
        )

    # ------------------------------------------------------------------
    # Warm path: dual simplex from a prior basis
    # ------------------------------------------------------------------
    def _warm_solve(
        self, problem: _EquationalProblem, payload: dict, c: np.ndarray
    ) -> LPSolution | None:
        """Hot-start from a prior basis; ``None`` means "fall back to cold"."""
        if (
            payload.get("n") != problem.n
            or payload.get("num_eq") != problem.num_eq
            or payload.get("num_a_ub", problem.num_a_ub + 1) > problem.num_a_ub
            or not np.array_equal(payload.get("finite_upper"), problem.finite_upper)
            or not np.array_equal(payload.get("finite_lower"), problem.finite_lower)
        ):
            return None
        num_rows, num_cols = problem.a.shape
        if num_rows == 0:
            return None

        # Prior basic columns, remapped into this layout, then extended with
        # the new rows' slacks: the classic dual-feasible basis extension.
        basis_columns: list[int] = []
        for label in payload["basis_labels"]:
            column = problem.label_column(tuple(label))
            if column is None:
                return None
            basis_columns.append(column)
        old_num_a_ub = int(payload["num_a_ub"])
        basis_columns.extend(
            2 * problem.n + row for row in range(old_num_a_ub, problem.num_a_ub)
        )
        if len(basis_columns) != num_rows or len(set(basis_columns)) != num_rows:
            return None
        basis = np.array(basis_columns, dtype=int)

        basis_matrix = problem.a[:, basis]
        try:
            body = np.linalg.solve(basis_matrix, problem.a)
            rhs = np.linalg.solve(basis_matrix, problem.b)
        except np.linalg.LinAlgError:
            return None
        if not (np.all(np.isfinite(body)) and np.all(np.isfinite(rhs))):
            return None

        tableau = np.zeros((num_rows + 1, num_cols + 1))
        tableau[:num_rows, :num_cols] = body
        tableau[:num_rows, -1] = rhs
        reduced = problem.c - problem.c[basis] @ body
        if np.min(reduced) < -1e-6:
            # The prior basis is not dual feasible here (objective changed?):
            # dual simplex does not apply, let the cold path handle it.
            return None
        tableau[-1, :num_cols] = reduced
        tableau[-1, -1] = -float(problem.c[basis] @ rhs)

        outcome, dual_iterations = _dual_simplex_iterate(
            tableau, basis, num_cols, self.max_iterations
        )
        if outcome == "iteration_limit":
            return None
        if outcome == "infeasible":
            return LPSolution(
                LPStatus.INFEASIBLE,
                message="dual simplex: appended rows are unsatisfiable",
                iterations=dual_iterations,
                warm_start_used=True,
            )
        # Clean up any reduced costs the canonicalization left slightly
        # negative; from a primal-feasible tableau this is ordinary phase 2.
        outcome, primal_iterations = _simplex_iterate(
            tableau, basis, num_cols, self.max_iterations
        )
        iterations = dual_iterations + primal_iterations
        if outcome == "iteration_limit":
            return None
        if outcome == "unbounded":
            return LPSolution(
                LPStatus.UNBOUNDED, message="phase-2 unbounded", iterations=iterations
            )
        return self._extract(
            problem,
            tableau,
            basis,
            c,
            iterations,
            warm_used=True,
            message="simplex optimal (warm start)",
        )

    # ------------------------------------------------------------------
    def _extract(
        self,
        problem: _EquationalProblem,
        tableau: np.ndarray,
        basis: np.ndarray,
        c: np.ndarray,
        iterations: int,
        warm_used: bool,
        message: str,
    ) -> LPSolution:
        """Read the solution off an optimal tableau and mint a warm handle."""
        num_rows = tableau.shape[0] - 1
        num_cols = tableau.shape[1] - 1
        solution = np.zeros(num_cols)
        artificial_basic = False
        for row in range(num_rows):
            if basis[row] < num_cols:
                solution[basis[row]] = tableau[row, -1]
            else:
                artificial_basic = True
        x = problem.recover(solution)
        handle = None
        if not artificial_basic:
            handle = WarmStart(
                backend=self.name,
                values=x,
                payload={
                    "n": problem.n,
                    "num_a_ub": problem.num_a_ub,
                    "finite_upper": problem.finite_upper,
                    "finite_lower": problem.finite_lower,
                    "num_eq": problem.num_eq,
                    "basis_labels": [problem.column_label(int(col)) for col in basis],
                },
            )
        return LPSolution(
            LPStatus.OPTIMAL,
            values=x,
            objective=float(np.dot(c, x)),
            message=message,
            iterations=iterations,
            warm_start=handle,
            warm_start_used=warm_used,
        )
