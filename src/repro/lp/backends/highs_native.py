"""Native ``highspy`` LP backend with true basis reuse across appended rows.

The default :class:`~repro.lp.backends.scipy_backend.ScipyBackend` drives
HiGHS through ``scipy.optimize.linprog``, which re-presolves every solve
from scratch — the one cost the incremental CEGIS machinery (append-only
:class:`~repro.lp.model.LPSession` row growth, round-over-round warm
starts) cannot amortize through that API.  This backend talks to HiGHS
directly through its ``highspy`` bindings instead:

* the backend instance **keeps the HiGHS model alive between solves**.
  When the next standard form is the previous one plus extra inequality
  rows (exactly what an ``LPSession`` produces round after round), the new
  rows are handed to ``Highs.addRows`` and the solver re-runs from its
  retained basis/factorization — no model rebuild, no re-presolve, a
  dual-simplex cleanup of the appended rows only;
* every optimal solve mints a :class:`~repro.lp.model.WarmStart` whose
  payload carries the final **HiGHS basis** (column/row statuses), so a
  *different* backend instance — a resumed session, a racing portfolio —
  can still seed ``Highs.setBasis`` with the previous basis extended by
  basic slacks for the new rows (the classic dual-feasible extension);
* any mismatch (variables changed, equality block changed, bounds or
  objective moved, a stale or foreign handle) falls back to a cold
  ``passModel`` solve silently, per the
  :meth:`~repro.lp.backends.base.LPBackend.solve` contract.

Basis reuse steers the pivot path, so a warm solve may land on a different
vertex of a degenerate optimal face than a cold solve:
``warm_start_is_exact`` is honestly ``False`` on the native path.  Callers
that pin byte-level reproducibility (the incremental differential tests)
keep using the scipy backend; callers that want the fastest rounds use this
one and compare at verdict level.

``highspy`` is an **optional** dependency.  When it is not importable the
backend stays registered but degrades to the scipy path with a loud
capability flag: ``available`` is ``False``, a one-time warning is logged,
every degraded solve increments ``repro_lp_backend_fallback_total``, and
``warm_start_is_exact`` reverts to the scipy backend's honest ``True``
(the fallback ignores handles entirely).  The registry's capability probe
(:func:`repro.lp.backends.backend_capabilities`) surfaces all of this.
"""

from __future__ import annotations

import importlib.util
import itertools
import logging
import threading

import numpy as np
import scipy.sparse as sp

import repro.obs as obs
from repro.lp.backends.base import LPBackend
from repro.lp.backends.scipy_backend import ScipyBackend
from repro.lp.model import LPSolution, WarmStart
from repro.lp.status import LPStatus

#: Whether the native bindings are importable in this process.  Probed once
#: at import time (cheap: metadata only, the module itself loads lazily).
HIGHSPY_AVAILABLE: bool = importlib.util.find_spec("highspy") is not None

_LOGGER = logging.getLogger("repro.lp")
_FALLBACK_ANNOUNCED = False

#: Process-wide unique tokens stamped into minted basis payloads, so an
#: instance can tell "the handle I just minted from my retained basis" apart
#: from a stale or foreign handle without comparing whole basis vectors.
_BASIS_TOKENS = itertools.count(1)


def _announce_fallback() -> None:
    """Log the degraded-capability warning once per process."""
    global _FALLBACK_ANNOUNCED
    if not _FALLBACK_ANNOUNCED:
        _FALLBACK_ANNOUNCED = True
        _LOGGER.warning(
            "LP backend 'highs_native' requested but highspy is not installed; "
            "degrading to the scipy/linprog path (no native basis reuse). "
            "Install highspy to enable it."
        )


def _count_fallback(reason: str) -> None:
    if obs.enabled():
        obs.counter(
            "repro_lp_backend_fallback_total",
            "Solves degraded to a fallback backend, by backend and reason.",
            labels=("backend", "reason"),
        ).inc(backend="highs_native", reason=reason)


class _RetainedModel:
    """The constraint state the live HiGHS model was last built from.

    Rows are laid out ``[equality block; inequality block]`` so append-only
    inequality growth — the only growth :class:`~repro.lp.model.LPSession`
    produces — is always an append at the *bottom* of the HiGHS model.
    Prefix equality is checked on the raw CSR arrays, which is a few
    ``memcmp``-speed comparisons, orders of magnitude cheaper than the
    presolve it avoids.
    """

    def __init__(self, c, a_ub, b_ub, a_eq, b_eq, bounds) -> None:
        self.c = np.array(c, dtype=np.float64, copy=True)
        self.bounds = np.array(bounds, dtype=np.float64, copy=True)
        self.ub = sp.csr_matrix(a_ub, dtype=np.float64, copy=True)
        self.b_ub = np.array(b_ub, dtype=np.float64, copy=True)
        self.eq = sp.csr_matrix(a_eq, dtype=np.float64, copy=True)
        self.b_eq = np.array(b_eq, dtype=np.float64, copy=True)

    @property
    def num_rows(self) -> int:
        return int(self.eq.shape[0] + self.ub.shape[0])

    def appended_rows(self, other: "_RetainedModel") -> slice | None:
        """The slice of ``other``'s ub rows beyond ours, if everything else
        (variables, objective, bounds, equality block, our ub prefix) is
        unchanged; ``None`` means "not an append — rebuild"."""
        if other.c.shape != self.c.shape or not np.array_equal(other.c, self.c):
            return None
        if not np.array_equal(other.bounds, self.bounds):
            return None
        if other.eq.shape != self.eq.shape or not _csr_equal(other.eq, self.eq):
            return None
        if not np.array_equal(other.b_eq, self.b_eq):
            return None
        old_rows = self.ub.shape[0]
        if other.ub.shape[1] != self.ub.shape[1] or other.ub.shape[0] < old_rows:
            return None
        if not _csr_prefix_equal(other.ub, self.ub, old_rows):
            return None
        if not np.array_equal(other.b_ub[:old_rows], self.b_ub):
            return None
        return slice(old_rows, other.ub.shape[0])


def _csr_equal(a: sp.csr_matrix, b: sp.csr_matrix) -> bool:
    return (
        np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def _csr_prefix_equal(grown: sp.csr_matrix, prefix: sp.csr_matrix, rows: int) -> bool:
    if not np.array_equal(grown.indptr[: rows + 1], prefix.indptr[: rows + 1]):
        return False
    nnz = int(prefix.indptr[rows])
    return np.array_equal(grown.indices[:nnz], prefix.indices[:nnz]) and np.array_equal(
        grown.data[:nnz], prefix.data[:nnz]
    )


class HighsNativeBackend(LPBackend):
    """Direct ``highspy`` driver with retained-model incremental re-solves.

    Without ``highspy`` installed the instance is a loudly-flagged shim
    around :class:`ScipyBackend` (``available`` is ``False``); with it, the
    instance owns one ``highspy.Highs`` object whose model, basis, and
    factorization persist across :meth:`solve` calls for the lifetime of
    the instance — which is the lifetime of an
    :class:`~repro.lp.model.LPSession`, since sessions resolve their
    backend once at construction.
    """

    name = "highs_native"
    supports_sparse = True
    available = HIGHSPY_AVAILABLE

    def __init__(self) -> None:
        self._fallback = None if HIGHSPY_AVAILABLE else ScipyBackend()
        if self._fallback is not None:
            _announce_fallback()
        self._highs = None
        self._retained: _RetainedModel | None = None
        #: Token of the handle minted from the currently retained basis
        #: (``None`` when the retained basis was never handed out).
        self._retained_token: int | None = None
        # The instance retains one live ``highspy.Highs`` across solves, so
        # concurrent callers (a racing portfolio's threads) must serialize.
        self._native_lock = threading.Lock()

    @property
    def native(self) -> bool:
        """Whether solves actually go through ``highspy`` in this process."""
        return self._fallback is None

    @property
    def warm_start_is_exact(self) -> bool:
        """Basis reuse steers the pivot path — honest ``False`` natively.

        The degraded (scipy) path ignores handles entirely, so there a warm
        solve *is* a cold solve and the flag reverts to ``True``.
        """
        if self._fallback is not None:
            return self._fallback.warm_start_is_exact
        return False

    def accepts_handle(self, warm_start: WarmStart) -> bool:
        """Accept our own handles; degraded instances also accept scipy's."""
        if warm_start.backend == self.name:
            return True
        return self._fallback is not None and self._fallback.accepts_handle(warm_start)

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None) -> LPSolution:
        if self._fallback is not None:
            _count_fallback("highspy_missing")
            return self._fallback.solve(
                c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=warm_start
            )
        with self._native_lock:
            return self._solve_native(c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start)

    # ------------------------------------------------------------------
    # Native path (everything below only runs with highspy importable)
    # ------------------------------------------------------------------
    def _solve_native(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start) -> LPSolution:
        import highspy

        incoming = _RetainedModel(c, a_ub, b_ub, a_eq, b_eq, bounds)
        appended = (
            self._retained.appended_rows(incoming)
            if self._highs is not None and self._retained is not None
            else None
        )
        warm_used = False
        try:
            if appended is not None:
                new_rows = incoming.ub.shape[0] - appended.start
                if new_rows:
                    self._add_ub_rows(incoming, appended)
                if warm_start is None:
                    # The caller asked for cold semantics: drop the retained
                    # basis/solution so HiGHS solves from scratch.
                    self._highs.clearSolver()
                else:
                    payload = warm_start.payload or {}
                    token = payload.get("token")
                    if token is not None and token == self._retained_token:
                        # The handle was minted from the basis this instance
                        # still retains: reusing the retained state *is*
                        # using the handle.
                        warm_used = True
                    else:
                        # A stale or foreign handle: install its basis
                        # explicitly, or solve cold — never report a payload
                        # that was not actually used.
                        warm_used = self._seed_basis(payload, incoming)
                        if not warm_used:
                            self._highs.clearSolver()
            else:
                self._pass_model(incoming)
                if warm_start is not None and warm_start.payload is not None:
                    warm_used = self._seed_basis(warm_start.payload, incoming)
            run_status = self._highs.run()
        except Exception as error:  # pragma: no cover - defensive: binding drift
            self._highs = None
            self._retained = None
            self._retained_token = None
            return LPSolution(
                LPStatus.ERROR, message=f"highspy failure: {error}", warm_start_used=False
            )
        self._retained = incoming
        if run_status != highspy.HighsStatus.kOk and run_status != highspy.HighsStatus.kWarning:
            return LPSolution(
                LPStatus.ERROR,
                message=f"highspy run status {run_status}",
                warm_start_used=warm_used,
            )
        return self._extract(incoming, warm_used)

    def _ensure_highs(self):
        import highspy

        if self._highs is None:
            self._highs = highspy.Highs()
            # Deterministic, quiet solves: one thread, pinned seed, no tty
            # chatter.  Dual simplex (the HiGHS default) is what basis
            # reuse across appended rows wants.
            self._highs.setOptionValue("output_flag", False)
            self._highs.setOptionValue("threads", 1)
            self._highs.setOptionValue("random_seed", 0)
        return self._highs

    def _pass_model(self, retained: _RetainedModel) -> None:
        import highspy

        highs = self._ensure_highs()
        highs.clear()
        self._highs.setOptionValue("output_flag", False)
        self._highs.setOptionValue("threads", 1)
        self._highs.setOptionValue("random_seed", 0)
        infinity = highs.getInfinity()
        n = retained.c.shape[0]
        matrix = sp.vstack([retained.eq, retained.ub], format="csr")
        num_eq = retained.eq.shape[0]
        row_lower = np.concatenate(
            [retained.b_eq, np.full(retained.ub.shape[0], -infinity)]
        )
        row_upper = np.concatenate([retained.b_eq, retained.b_ub])
        lp = highspy.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = num_eq + retained.ub.shape[0]
        lp.col_cost_ = retained.c
        lp.col_lower_ = np.clip(retained.bounds[:, 0], -infinity, infinity)
        lp.col_upper_ = np.clip(retained.bounds[:, 1], -infinity, infinity)
        lp.row_lower_ = np.clip(row_lower, -infinity, infinity)
        lp.row_upper_ = np.clip(row_upper, -infinity, infinity)
        lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = matrix.indptr.astype(np.int32)
        lp.a_matrix_.index_ = matrix.indices.astype(np.int32)
        lp.a_matrix_.value_ = matrix.data.astype(np.float64)
        highs.passModel(lp)

    def _add_ub_rows(self, incoming: _RetainedModel, appended: slice) -> None:
        highs = self._ensure_highs()
        infinity = highs.getInfinity()
        ub = incoming.ub
        first = appended.start
        base_nnz = int(ub.indptr[first])
        num_new = ub.shape[0] - first
        highs.addRows(
            num_new,
            np.full(num_new, -infinity),
            np.clip(incoming.b_ub[first:], -infinity, infinity),
            int(ub.indptr[-1]) - base_nnz,
            (ub.indptr[first:] - base_nnz).astype(np.int32),
            ub.indices[base_nnz:].astype(np.int32),
            ub.data[base_nnz:].astype(np.float64),
        )

    def _seed_basis(self, payload: dict, incoming: _RetainedModel) -> bool:
        """Install a prior basis (extended with basic slacks); False = cold."""
        import highspy

        col_status = payload.get("col_status")
        row_status = payload.get("row_status")
        if col_status is None or row_status is None:
            return False
        if len(col_status) != incoming.c.shape[0]:
            return False
        total_rows = incoming.num_rows
        if len(row_status) > total_rows:
            return False
        try:
            basis = highspy.HighsBasis()
            basis.col_status = [highspy.HighsBasisStatus(v) for v in col_status]
            basis.row_status = [
                highspy.HighsBasisStatus(v) for v in row_status
            ] + [highspy.HighsBasisStatus.kBasic] * (total_rows - len(row_status))
            status = self._highs.setBasis(basis)
            return status == highspy.HighsStatus.kOk
        except Exception:  # pragma: no cover - binding drift / invalid basis
            return False

    def _disambiguate(self, model_status):
        """Pin down ``kUnboundedOrInfeasible`` with one presolve-off re-solve.

        HiGHS reports the combined status when *presolve* detects the model
        cannot be optimal but cannot tell unbounded from infeasible; the
        scipy backend (and the backend-equivalence oracle) always gets a
        definitive answer, so guessing either way here would make the
        portfolio disagree with itself.  Returns the (possibly still
        ambiguous) model status after the re-solve.
        """
        import highspy

        try:
            self._highs.setOptionValue("presolve", "off")
            self._highs.clearSolver()
            self._highs.run()
            model_status = self._highs.getModelStatus()
        except Exception:  # pragma: no cover - binding drift
            pass
        finally:
            try:
                self._highs.setOptionValue("presolve", "choose")
            except Exception:  # pragma: no cover - binding drift
                pass
        return model_status

    def _extract(self, incoming: _RetainedModel, warm_used: bool) -> LPSolution:
        import highspy

        model_status = self._highs.getModelStatus()
        if model_status == highspy.HighsModelStatus.kUnboundedOrInfeasible:
            model_status = self._disambiguate(model_status)
        status_map = {
            highspy.HighsModelStatus.kOptimal: LPStatus.OPTIMAL,
            highspy.HighsModelStatus.kInfeasible: LPStatus.INFEASIBLE,
            highspy.HighsModelStatus.kUnbounded: LPStatus.UNBOUNDED,
            # Still ambiguous after the presolve-off re-solve: refuse to
            # guess rather than diverge from the other backends' answer.
            highspy.HighsModelStatus.kUnboundedOrInfeasible: LPStatus.ERROR,
        }
        status = status_map.get(model_status, LPStatus.ERROR)
        info = self._highs.getInfo()
        iterations = int(getattr(info, "simplex_iteration_count", 0)) or None
        message = f"highspy: {self._highs.modelStatusToString(model_status)}"
        if status is not LPStatus.OPTIMAL:
            self._retained_token = None
            return LPSolution(
                status, message=message, iterations=iterations, warm_start_used=warm_used
            )
        solution = self._highs.getSolution()
        values = np.asarray(solution.col_value, dtype=np.float64)
        handle = None
        try:
            basis = self._highs.getBasis()
            token = next(_BASIS_TOKENS)
            handle = WarmStart(
                backend=self.name,
                values=values,
                payload={
                    "col_status": [int(v) for v in basis.col_status],
                    "row_status": [int(v) for v in basis.row_status],
                    "token": token,
                },
            )
            self._retained_token = token
        except Exception:  # pragma: no cover - basis unavailable (IPM etc.)
            handle = WarmStart(backend=self.name, values=values)
            self._retained_token = None
        return LPSolution(
            status=status,
            values=values,
            objective=float(info.objective_function_value),
            message=message,
            iterations=iterations,
            warm_start=handle,
            warm_start_used=warm_used,
        )
