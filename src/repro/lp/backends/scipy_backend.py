"""LP backend delegating to scipy's HiGHS solver."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

import repro.obs as obs
from repro.lp.backends.base import LPBackend
from repro.lp.model import LPSolution, WarmStart
from repro.lp.status import LPStatus

#: Mapping from ``scipy.optimize.linprog`` status codes to :class:`LPStatus`.
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,       # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}

#: ``linprog`` methods that accept an ``x0`` initial guess.  HiGHS (the
#: default) does not — passing ``x0`` there only raises an OptimizeWarning —
#: so warm starts silently fall back to cold solves for every other method.
_X0_METHODS = frozenset({"revised simplex"})


def _count_warmstart_fallback(backend: str, reason: str) -> None:
    """Count a warm start that was supplied but could not be exploited.

    Without this counter, ``warm_start_used=False`` is indistinguishable
    from "no handle supplied" — a session can thread handles through every
    round while the solver quietly cold-starts each one.  Reasons:
    ``method_rejects_x0`` (solver method takes no initial guess — the HiGHS
    default), ``shape_mismatch`` (stale handle from a different variable
    space), ``guess_rejected`` (solver tried ``x0`` and bounced, retried
    cold).
    """
    if obs.enabled():
        obs.counter(
            "repro_lp_warmstart_fallback_total",
            "Warm-start handles supplied to a solve but not exploited.",
            labels=("backend", "reason"),
        ).inc(backend=backend, reason=reason)


def _num_entries(matrix) -> int:
    """Logical entry count of a dense or sparse matrix (rows × cols).

    Deliberately not ``nnz``: an all-zero block still carries rows whose
    right-hand sides constrain feasibility (e.g. ``0 == b_eq``).
    """
    rows, cols = matrix.shape
    return rows * cols


class ScipyBackend(LPBackend):
    """Solve LPs with ``scipy.optimize.linprog(method="highs")``.

    HiGHS is a sparsity-exploiting solver, so sparse constraint matrices
    from ``LPModel.standard_form(sparse=True)`` are forwarded as-is — no
    densification happens on this path.
    """

    name = "scipy"
    supports_sparse = True

    def __init__(self, method: str = "highs") -> None:
        self.method = method

    @property
    def warm_start_is_exact(self) -> bool:
        """HiGHS ignores warm starts entirely, so they cannot change bytes."""
        return self.method not in _X0_METHODS

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None) -> LPSolution:
        bounds_list = [(row[0], row[1]) for row in np.asarray(bounds, dtype=float)]
        x0 = None
        if warm_start is not None:
            if self.method not in _X0_METHODS:
                _count_warmstart_fallback(self.name, "method_rejects_x0")
            elif warm_start.values.shape != np.shape(c):
                _count_warmstart_fallback(self.name, "shape_mismatch")
            else:
                x0 = warm_start.values

        def run(guess):
            return linprog(
                c,
                A_ub=a_ub if _num_entries(a_ub) else None,
                b_ub=b_ub if _num_entries(a_ub) else None,
                A_eq=a_eq if _num_entries(a_eq) else None,
                b_eq=b_eq if _num_entries(a_eq) else None,
                bounds=bounds_list,
                method=self.method,
                x0=guess,
            )

        result = run(x0)
        if x0 is not None and result.status != 0:
            # The guess was rejected (linprog status 4 when x0 cannot be
            # converted to a basic feasible solution — the normal case once
            # appended rows cut off the previous optimum) or otherwise did
            # not reach optimality: per the warm-start contract, retry cold
            # rather than surface a spurious failure — but count it.
            _count_warmstart_fallback(self.name, "guess_rejected")
            x0 = None
            result = run(None)
        status = _STATUS_MAP.get(result.status, LPStatus.ERROR)
        iterations = int(result.nit) if getattr(result, "nit", None) is not None else None
        if status is LPStatus.OPTIMAL and result.x is not None:
            values = np.asarray(result.x, dtype=np.float64)
            return LPSolution(
                status=status,
                values=values,
                objective=float(result.fun),
                message=str(result.message),
                iterations=iterations,
                warm_start=WarmStart(backend=self.name, values=values),
                warm_start_used=x0 is not None,
            )
        return LPSolution(
            status=status,
            message=str(result.message),
            iterations=iterations,
            warm_start_used=x0 is not None,
        )
