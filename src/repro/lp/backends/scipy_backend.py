"""LP backend delegating to scipy's HiGHS solver."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.backends.base import LPBackend
from repro.lp.model import LPSolution
from repro.lp.status import LPStatus

#: Mapping from ``scipy.optimize.linprog`` status codes to :class:`LPStatus`.
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,       # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def _num_entries(matrix) -> int:
    """Logical entry count of a dense or sparse matrix (rows × cols).

    Deliberately not ``nnz``: an all-zero block still carries rows whose
    right-hand sides constrain feasibility (e.g. ``0 == b_eq``).
    """
    rows, cols = matrix.shape
    return rows * cols


class ScipyBackend(LPBackend):
    """Solve LPs with ``scipy.optimize.linprog(method="highs")``.

    HiGHS is a sparsity-exploiting solver, so sparse constraint matrices
    from ``LPModel.standard_form(sparse=True)`` are forwarded as-is — no
    densification happens on this path.
    """

    name = "scipy"
    supports_sparse = True

    def __init__(self, method: str = "highs") -> None:
        self.method = method

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds) -> LPSolution:
        bounds_list = [(row[0], row[1]) for row in np.asarray(bounds, dtype=float)]
        result = linprog(
            c,
            A_ub=a_ub if _num_entries(a_ub) else None,
            b_ub=b_ub if _num_entries(a_ub) else None,
            A_eq=a_eq if _num_entries(a_eq) else None,
            b_eq=b_eq if _num_entries(a_eq) else None,
            bounds=bounds_list,
            method=self.method,
        )
        status = _STATUS_MAP.get(result.status, LPStatus.ERROR)
        if status is LPStatus.OPTIMAL and result.x is not None:
            return LPSolution(
                status=status,
                values=np.asarray(result.x, dtype=np.float64),
                objective=float(result.fun),
                message=str(result.message),
            )
        return LPSolution(status=status, message=str(result.message))
