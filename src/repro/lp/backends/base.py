"""Abstract interface implemented by every LP backend."""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.lp.model import LPSolution


class LPBackend(abc.ABC):
    """Solves LPs given in the standard form produced by ``LPModel``."""

    #: Human-readable backend name.
    name: str = "abstract"

    #: Whether :meth:`solve` consumes ``scipy.sparse`` constraint matrices
    #: natively.  ``LPModel.solve`` consults this flag to pick the
    #: standard-form representation; backends that leave it ``False`` must
    #: still accept sparse inputs by densifying them (see :meth:`as_dense`).
    supports_sparse: bool = False

    @abc.abstractmethod
    def solve(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: np.ndarray,
        a_eq,
        b_eq: np.ndarray,
        bounds: np.ndarray,
    ) -> LPSolution:
        """Solve ``min c@x  s.t.  a_ub@x<=b_ub, a_eq@x==b_eq, bounds``.

        ``a_ub`` and ``a_eq`` may be dense arrays or ``scipy.sparse``
        matrices (see ``LPModel.standard_form``); ``bounds`` is an ``(n, 2)``
        array of per-variable ``(lower, upper)`` pairs; entries may be
        ``±inf``.
        """
        raise NotImplementedError

    @staticmethod
    def as_dense(matrix) -> np.ndarray:
        """Lazily densify a possibly-sparse constraint matrix."""
        if sp.issparse(matrix):
            return matrix.toarray()
        return np.asarray(matrix, dtype=float)
