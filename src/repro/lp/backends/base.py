"""Abstract interface implemented by every LP backend."""

from __future__ import annotations

import abc

import numpy as np

from repro.lp.model import LPSolution


class LPBackend(abc.ABC):
    """Solves LPs given in the standard form produced by ``LPModel``."""

    #: Human-readable backend name.
    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        bounds: np.ndarray,
    ) -> LPSolution:
        """Solve ``min c@x  s.t.  a_ub@x<=b_ub, a_eq@x==b_eq, bounds``.

        ``bounds`` is an ``(n, 2)`` array of per-variable ``(lower, upper)``
        pairs; entries may be ``±inf``.
        """
        raise NotImplementedError
