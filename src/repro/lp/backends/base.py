"""Abstract interface implemented by every LP backend."""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.lp.model import LPSolution, WarmStart


class LPBackend(abc.ABC):
    """Solves LPs given in the standard form produced by ``LPModel``."""

    #: Human-readable backend name.
    name: str = "abstract"

    #: Whether :meth:`solve` consumes ``scipy.sparse`` constraint matrices
    #: natively.  ``LPModel.solve`` consults this flag to pick the
    #: standard-form representation; backends that leave it ``False`` must
    #: still accept sparse inputs by densifying them (see :meth:`as_dense`).
    supports_sparse: bool = False

    #: Whether this backend's solver is actually present in the process.
    #: Backends wrapping an optional native dependency (``highs_native``)
    #: set this ``False`` when the dependency is missing and degrade to a
    #: fallback path; the registry's capability probe surfaces the flag so
    #: callers (and the test-suite's ``requires_highspy`` marker) can tell a
    #: real native solve from a degraded one.
    available: bool = True

    @property
    def warm_start_is_exact(self) -> bool:
        """Whether warm-started solves are byte-identical to cold solves.

        A warm start that changes the solver's pivot path may land on a
        *different* vertex of a degenerate optimal face — still optimal, but
        not the same bytes a cold solve returns.  Backends that exploit a
        handle must override this to ``False``; the default ``True`` covers
        backends that ignore handles entirely (a cold solve *is* the warm
        solve).  Callers that pin byte-level reproducibility (the
        incremental repair driver's differential tests) consult this flag.
        """
        return True

    @abc.abstractmethod
    def solve(
        self,
        c: np.ndarray,
        a_ub,
        b_ub: np.ndarray,
        a_eq,
        b_eq: np.ndarray,
        bounds: np.ndarray,
        warm_start: WarmStart | None = None,
    ) -> LPSolution:
        """Solve ``min c@x  s.t.  a_ub@x<=b_ub, a_eq@x==b_eq, bounds``.

        ``a_ub`` and ``a_eq`` may be dense arrays or ``scipy.sparse``
        matrices (see ``LPModel.standard_form``); ``bounds`` is an ``(n, 2)``
        array of per-variable ``(lower, upper)`` pairs; entries may be
        ``±inf``.

        ``warm_start`` is a handle from a previous solve of a smaller
        version of the same model (same variables, fewer rows).  Backends
        may exploit it, but must fall back to a cold solve *silently* when
        they cannot — an incompatible or stale handle is never an error.
        The returned solution's ``warm_start_used`` says what happened, and
        its ``warm_start`` carries the handle for the next solve.
        """
        raise NotImplementedError

    def accepts_handle(self, warm_start: WarmStart) -> bool:
        """Whether a :class:`WarmStart` minted by ``warm_start.backend`` may
        be handed to this backend's :meth:`solve` at all.

        :class:`~repro.lp.model.LPSession` consults this before threading a
        handle through, so handles never reach a solver that cannot even
        recognize their provenance.  The default accepts only this backend's
        own handles; composite backends (racing portfolios, fallback
        wrappers) override it to accept their members' names — the handle a
        racing solve returns is minted by whichever member answered.
        """
        return warm_start.backend == self.name

    @staticmethod
    def as_dense(matrix) -> np.ndarray:
        """Lazily densify a possibly-sparse constraint matrix."""
        if sp.issparse(matrix):
            return matrix.toarray()
        return np.asarray(matrix, dtype=float)
