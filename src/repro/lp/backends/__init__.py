"""LP solver backends.

Three backends are provided, plus a racing combinator:

``"scipy"``
    scipy's HiGHS solver (dual simplex / interior point).  This is the
    default and is used for all the repair LPs in the experiments.
``"highs_native"``
    The HiGHS C++ solver driven through its own ``highspy`` bindings —
    real basis handles, append-only row growth without re-presolve.  When
    ``highspy`` is not installed the backend degrades to the scipy path
    and says so loudly (log line + ``repro_lp_backend_fallback_total``).
``"simplex"``
    A from-scratch dense two-phase simplex implementation.  It exists so the
    package has no hard algorithmic dependency on scipy's solver, serves as a
    cross-check in the test-suite, and is used in ablation benchmarks.
``"race:a,b[,c]"``
    A racing portfolio over 2–3 registered backends (see
    :mod:`repro.lp.racing`): every solve runs on all members concurrently,
    the returned answer is always the first-listed member's, so racing is
    byte-identical to a solo run of the preferred backend.
"""

from __future__ import annotations

from repro.exceptions import LPError
from repro.lp.backends.base import LPBackend
from repro.lp.backends.highs_native import HIGHSPY_AVAILABLE, HighsNativeBackend
from repro.lp.backends.scipy_backend import ScipyBackend
from repro.lp.backends.simplex import SimplexBackend

_BACKENDS: dict[str, type[LPBackend]] = {
    "scipy": ScipyBackend,
    "highs": ScipyBackend,
    "highs_native": HighsNativeBackend,
    "simplex": SimplexBackend,
}

DEFAULT_BACKEND = "scipy"


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (racing specs aside)."""
    return tuple(sorted(_BACKENDS))


def register_backend(name: str, factory: type[LPBackend]) -> None:
    """Register (or replace) a backend under ``name``.

    This is how the test-suite injects fault-injection stubs (crashing or
    hanging racers); production backends are registered at import time
    above.  Names are case-insensitive and must not look like racing specs.
    """
    key = name.lower()
    if key.startswith("race:"):
        raise LPError(f"cannot register {name!r}: 'race:' prefix is reserved")
    _BACKENDS[key] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend registered via :func:`register_backend`."""
    _BACKENDS.pop(name.lower(), None)


def get_backend(name: str | None = None) -> LPBackend:
    """Instantiate a backend by name (``None`` gives the default).

    ``"race:a,b"`` specs instantiate every member and wrap them in a
    :class:`~repro.lp.racing.RacingBackend`, preference order preserved.
    """
    key = (name or DEFAULT_BACKEND).lower()
    if key.startswith("race:"):
        from repro.lp.racing import RacingBackend, parse_race_spec

        members = [get_backend(member) for member in parse_race_spec(key)]
        return RacingBackend(members)
    if key not in _BACKENDS:
        raise LPError(f"unknown LP backend {name!r}; available: {available_backends()}")
    return _BACKENDS[key]()


def backend_capabilities(name: str | None = None) -> dict[str, object]:
    """Capability probe for one backend spec, without running a solve.

    Returns ``{"name", "available", "supports_sparse", "warm_start_is_exact",
    "members"}`` — ``available`` is ``False`` when the backend (or, for a
    racing spec, any member) is degraded because its native solver is
    missing; ``members`` lists the per-member probes for racing specs and is
    empty otherwise.  The ``requires_highspy`` test marker and the CI matrix
    leg consult this instead of importing ``highspy`` themselves.
    """
    backend = get_backend(name)
    members = [
        backend_capabilities(member.name)
        for member in getattr(backend, "backends", [])
    ]
    available = bool(getattr(backend, "available", True)) and all(
        member["available"] for member in members
    )
    return {
        "name": backend.name,
        "available": available,
        "supports_sparse": backend.supports_sparse,
        "warm_start_is_exact": backend.warm_start_is_exact,
        "members": members,
    }


__all__ = [
    "LPBackend",
    "ScipyBackend",
    "SimplexBackend",
    "HighsNativeBackend",
    "HIGHSPY_AVAILABLE",
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "DEFAULT_BACKEND",
]
