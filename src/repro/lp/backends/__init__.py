"""LP solver backends.

Two backends are provided:

``"scipy"``
    scipy's HiGHS solver (dual simplex / interior point).  This is the
    default and is used for all the repair LPs in the experiments.
``"simplex"``
    A from-scratch dense two-phase simplex implementation.  It exists so the
    package has no hard algorithmic dependency on scipy's solver, serves as a
    cross-check in the test-suite, and is used in ablation benchmarks.
"""

from __future__ import annotations

from repro.exceptions import LPError
from repro.lp.backends.base import LPBackend
from repro.lp.backends.scipy_backend import ScipyBackend
from repro.lp.backends.simplex import SimplexBackend

_BACKENDS: dict[str, type[LPBackend]] = {
    "scipy": ScipyBackend,
    "highs": ScipyBackend,
    "simplex": SimplexBackend,
}

DEFAULT_BACKEND = "scipy"


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend`."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> LPBackend:
    """Instantiate a backend by name (``None`` gives the default)."""
    key = (name or DEFAULT_BACKEND).lower()
    if key not in _BACKENDS:
        raise LPError(f"unknown LP backend {name!r}; available: {available_backends()}")
    return _BACKENDS[key]()


__all__ = [
    "LPBackend",
    "ScipyBackend",
    "SimplexBackend",
    "available_backends",
    "get_backend",
    "DEFAULT_BACKEND",
]
