"""Norm-minimization objectives for LPs.

The repair LPs minimize either the ℓ1 or the ℓ∞ norm of the parameter delta
``Δ``.  Both are encoded with auxiliary variables in the standard way
(Granger et al., "Optimization with absolute values"):

* ℓ∞: one auxiliary ``t ≥ 0`` with ``-t ≤ Δ_i ≤ t`` for every ``i``, and
  objective ``t``.
* ℓ1: one auxiliary ``t_i ≥ 0`` per delta with ``-t_i ≤ Δ_i ≤ t_i``, and
  objective ``sum_i t_i``.

Both helpers operate on a *block* of existing variables in an
:class:`repro.lp.model.LPModel` and return the indices of the auxiliary
variables so callers can inspect them if needed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LPError
from repro.lp.model import LPModel

#: Norm names accepted by the repair entry points.
SUPPORTED_NORMS = ("l1", "linf", "l1+linf")


def add_linf_objective(model: LPModel, delta_indices: np.ndarray, weight: float = 1.0) -> int:
    """Add ``weight * ||Δ||_∞`` to the model objective; return the aux index."""
    delta_indices = np.asarray(delta_indices, dtype=int)
    if delta_indices.size == 0:
        raise LPError("cannot minimize the norm of an empty variable block")
    bound = model.add_variable("linf_bound", lower=0.0)
    count = delta_indices.size
    # Δ_i - t <= 0   and   -Δ_i - t <= 0
    identity = np.eye(count)
    minus_t = -np.ones((count, 1))
    columns = np.concatenate([delta_indices, [bound]])
    model.add_leq_block(np.hstack([identity, minus_t]), np.zeros(count), columns)
    model.add_leq_block(np.hstack([-identity, minus_t]), np.zeros(count), columns)
    model.add_objective_term(bound, weight)
    return bound


def add_l1_objective(model: LPModel, delta_indices: np.ndarray, weight: float = 1.0) -> np.ndarray:
    """Add ``weight * ||Δ||_1`` to the model objective; return aux indices."""
    delta_indices = np.asarray(delta_indices, dtype=int)
    if delta_indices.size == 0:
        raise LPError("cannot minimize the norm of an empty variable block")
    count = delta_indices.size
    aux = model.add_variables(count, "l1_abs", lower=0.0)
    identity = np.eye(count)
    columns = np.concatenate([delta_indices, aux])
    # Δ_i - t_i <= 0   and   -Δ_i - t_i <= 0
    model.add_leq_block(np.hstack([identity, -identity]), np.zeros(count), columns)
    model.add_leq_block(np.hstack([-identity, -identity]), np.zeros(count), columns)
    for index in aux:
        model.add_objective_term(int(index), weight)
    return aux


def add_norm_objective(model: LPModel, delta_indices: np.ndarray, norm: str = "linf") -> None:
    """Add the requested norm objective over ``delta_indices``.

    ``norm`` may be ``"l1"``, ``"linf"``, or ``"l1+linf"`` (the combination
    the original PRDNN implementation uses by default: the ℓ∞ norm keeps the
    largest single change small while the ℓ1 term promotes sparsity).
    """
    if norm == "linf":
        add_linf_objective(model, delta_indices)
    elif norm == "l1":
        add_l1_objective(model, delta_indices)
    elif norm == "l1+linf":
        add_linf_objective(model, delta_indices, weight=float(len(delta_indices)))
        add_l1_objective(model, delta_indices, weight=1.0)
    else:
        raise LPError(f"unsupported norm {norm!r}; expected one of {SUPPORTED_NORMS}")
