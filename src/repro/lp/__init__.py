"""Linear-programming substrate.

The paper uses Gurobi to solve the repair LPs.  This package provides the
same capability with two interchangeable backends:

* :class:`repro.lp.backends.scipy_backend.ScipyBackend` — scipy's HiGHS
  solver (the default; handles the large repair LPs).
* :class:`repro.lp.backends.simplex.SimplexBackend` — a from-scratch dense
  two-phase simplex implementation, useful for small LPs and as an
  independent cross-check of the default backend.

The modelling layer (:class:`repro.lp.model.LPModel`) supports named scalar
and vector variables, ``≤``/``≥``/``=`` constraints, box bounds, linear
objectives, and the ℓ1/ℓ∞ norm objectives used by the repair algorithms
(encoded with auxiliary variables, see :mod:`repro.lp.norms`).
"""

from repro.lp.model import LPModel, LPSession, LPSolution, WarmStart
from repro.lp.status import LPStatus
from repro.lp.expression import LinearExpression
from repro.lp.backends import available_backends, get_backend

__all__ = [
    "LPModel",
    "LPSession",
    "LPSolution",
    "WarmStart",
    "LPStatus",
    "LinearExpression",
    "available_backends",
    "get_backend",
]
