"""Linear-programming substrate.

The paper uses Gurobi to solve the repair LPs.  This package provides the
same capability with two interchangeable backends:

* :class:`repro.lp.backends.scipy_backend.ScipyBackend` — scipy's HiGHS
  solver (the default; handles the large repair LPs).
* :class:`repro.lp.backends.highs_native.HighsNativeBackend` — HiGHS via
  its own ``highspy`` bindings, with real basis handles and append-only
  row growth (degrades to the scipy path when ``highspy`` is missing).
* :class:`repro.lp.backends.simplex.SimplexBackend` — a from-scratch dense
  two-phase simplex implementation, useful for small LPs and as an
  independent cross-check of the default backend.

Backends can also be raced: ``get_backend("race:highs_native,scipy")``
runs every member concurrently per solve and always returns the
first-listed member's answer (see :mod:`repro.lp.racing`).

The modelling layer (:class:`repro.lp.model.LPModel`) supports named scalar
and vector variables, ``≤``/``≥``/``=`` constraints, box bounds, linear
objectives, and the ℓ1/ℓ∞ norm objectives used by the repair algorithms
(encoded with auxiliary variables, see :mod:`repro.lp.norms`).
"""

from repro.lp.model import LPModel, LPSession, LPSolution, WarmStart
from repro.lp.status import LPStatus
from repro.lp.expression import LinearExpression
from repro.lp.backends import (
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.lp.racing import RacingBackend, parse_race_spec

__all__ = [
    "LPModel",
    "LPSession",
    "LPSolution",
    "WarmStart",
    "LPStatus",
    "LinearExpression",
    "RacingBackend",
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "parse_race_spec",
    "register_backend",
    "unregister_backend",
]
