"""Sparse linear expressions over named LP variables.

:class:`LinearExpression` is a small convenience type used when building LPs
row by row (the test-suite and the simplex backend use it heavily).  The
repair algorithms build their constraint blocks directly as dense matrices
for speed, so this class intentionally stays simple: a mapping from variable
index to coefficient plus a constant offset.
"""

from __future__ import annotations

from collections.abc import Mapping


class LinearExpression:
    """An affine expression ``sum_i coeff[i] * x[i] + constant``."""

    __slots__ = ("_coefficients", "constant")

    def __init__(
        self,
        coefficients: Mapping[int, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self._coefficients: dict[int, float] = {}
        if coefficients:
            for index, value in coefficients.items():
                if value != 0.0:
                    self._coefficients[int(index)] = float(value)
        self.constant = float(constant)

    @classmethod
    def variable(cls, index: int, coefficient: float = 1.0) -> "LinearExpression":
        """The expression ``coefficient * x[index]``."""
        return cls({index: coefficient})

    @property
    def coefficients(self) -> dict[int, float]:
        """A copy of the index→coefficient mapping (zeros omitted)."""
        return dict(self._coefficients)

    def coefficient(self, index: int) -> float:
        """Coefficient of variable ``index`` (0.0 if absent)."""
        return self._coefficients.get(index, 0.0)

    def __add__(self, other) -> "LinearExpression":
        result = LinearExpression(self._coefficients, self.constant)
        if isinstance(other, LinearExpression):
            for index, value in other._coefficients.items():
                updated = result._coefficients.get(index, 0.0) + value
                if updated == 0.0:
                    result._coefficients.pop(index, None)
                else:
                    result._coefficients[index] = updated
            result.constant += other.constant
            return result
        result.constant += float(other)
        return result

    __radd__ = __add__

    def __neg__(self) -> "LinearExpression":
        negated = {index: -value for index, value in self._coefficients.items()}
        return LinearExpression(negated, -self.constant)

    def __sub__(self, other) -> "LinearExpression":
        if isinstance(other, LinearExpression):
            return self + (-other)
        return self + (-float(other))

    def __rsub__(self, other) -> "LinearExpression":
        return (-self) + float(other)

    def __mul__(self, scalar: float) -> "LinearExpression":
        scalar = float(scalar)
        scaled = {index: value * scalar for index, value in self._coefficients.items()}
        return LinearExpression(scaled, self.constant * scalar)

    __rmul__ = __mul__

    def evaluate(self, assignment) -> float:
        """Evaluate the expression at a dense assignment vector."""
        total = self.constant
        for index, value in self._coefficients.items():
            total += value * float(assignment[index])
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [f"{value:+g}*x{index}" for index, value in sorted(self._coefficients.items())]
        if self.constant or not terms:
            terms.append(f"{self.constant:+g}")
        return " ".join(terms)
