"""LP modelling layer.

:class:`LPModel` collects variables, linear constraints, bounds, and a linear
objective, and hands a standard-form problem to one of the backends in
:mod:`repro.lp.backends`.  The repair algorithms use it through the helpers
in :mod:`repro.lp.norms`, which add the auxiliary variables needed for
ℓ1/ℓ∞ norm minimization.

Standard form passed to backends::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lb <= x <= ub        (entries may be ±inf)

Constraint blocks are stored narrow — each block keeps only the columns it
actually touches — and :meth:`LPModel.standard_form` widens them on demand.
The dense path materializes full ``(rows, num_variables)`` arrays, which is
O(rows × vars) memory regardless of sparsity; the sparse fast path
(``standard_form(sparse=True)``) assembles ``scipy.sparse`` CSR matrices
directly from the narrow blocks and is what the batched repair engine hands
to sparse-capable backends.  :meth:`LPModel.solve` picks the representation
automatically from the backend's ``supports_sparse`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

import repro.obs as obs
from repro.exceptions import LPError
from repro.lp.expression import LinearExpression
from repro.lp.status import LPStatus
from repro.utils.timing import wall_cpu_now


def _observed_solve(solver, solve_callable):
    """Run one backend solve, mirroring it into the telemetry layer.

    The shared wrapper for :meth:`LPModel.solve` and :meth:`LPSession.solve`:
    an ``lp.solve`` span plus per-backend solve-time histogram and
    solve/iteration counters.  Telemetry reads the finished solution only —
    it never influences which backend runs or what it returns.
    """
    if not obs.enabled():
        return solve_callable()
    start_wall, _ = wall_cpu_now()
    with obs.span("lp.solve", backend=solver.name):
        solution = solve_callable()
    elapsed = wall_cpu_now()[0] - start_wall
    obs.histogram(
        "repro_lp_solve_seconds",
        "Wall-clock seconds per LP solve, by backend.",
        labels=("backend",),
    ).observe(elapsed, backend=solver.name)
    obs.counter(
        "repro_lp_solves_total",
        "LP solves by backend, outcome, and warm-start use.",
        labels=("backend", "status", "warm"),
    ).inc(
        backend=solver.name,
        status=solution.status.value,
        warm="true" if solution.warm_start_used else "false",
    )
    if solution.iterations:
        obs.counter(
            "repro_lp_iterations_total",
            "Simplex/IPM iterations spent, by backend.",
            labels=("backend",),
        ).inc(solution.iterations, backend=solver.name)
    return solution


@dataclass
class WarmStart:
    """Solver state captured from one solve, reusable on an extended model.

    A warm start is only meaningful between two solves of the *same model
    family*: the same variables (count, order, bounds) and a constraint set
    that only grew — exactly what an :class:`LPSession` produces round after
    round.  The handle is backend-specific: ``payload`` is opaque to
    everything except the backend whose ``backend`` name it carries, and a
    backend handed a handle it cannot use (or from another backend) must
    fall back to a cold solve silently.

    Attributes
    ----------
    backend:
        Name of the backend that produced the handle.
    values:
        The primal solution of the previous solve.
    payload:
        Backend-specific extra state (e.g. the simplex basis labels).
    """

    backend: str
    values: np.ndarray
    payload: dict | None = None


@dataclass
class LPSolution:
    """Result of solving an :class:`LPModel`.

    Attributes
    ----------
    status:
        Outcome of the solve.
    values:
        Dense variable assignment (``None`` unless ``status.is_optimal``).
    objective:
        Objective value at ``values`` (``None`` unless optimal).
    message:
        Backend-specific diagnostic text.
    iterations:
        Solver iteration count, when the backend reports one.
    warm_start:
        A :class:`WarmStart` handle for re-solving an extended version of
        the same model (``None`` when the backend cannot produce one).
    warm_start_used:
        Whether this solve actually consumed a warm-start handle.  Backends
        fall back to cold solves silently, so callers that thread handles
        through repeated solves read this flag for reporting.
    """

    status: LPStatus
    values: np.ndarray | None = None
    objective: float | None = None
    message: str = ""
    iterations: int | None = None
    warm_start: WarmStart | None = None
    warm_start_used: bool = False

    def value_of(self, indices) -> np.ndarray:
        """Extract the assignment of a block of variables by index array."""
        if self.values is None:
            raise LPError("solution has no variable values (status: %s)" % self.status)
        return self.values[np.asarray(indices, dtype=int)]


@dataclass
class _ConstraintBlock:
    """A block of constraints ``matrix @ x[columns] (sense) rhs``.

    ``matrix`` is either a dense float64 array or a canonical CSR matrix;
    every consumer branches on :func:`scipy.sparse.issparse`.
    """

    matrix: np.ndarray | sp.csr_matrix
    rhs: np.ndarray
    columns: np.ndarray
    equality: bool = False


def _coerce_block_matrix(matrix):
    """Normalize a block matrix: canonical float64 CSR, or dense 2-D array.

    Sparse inputs stay sparse — densifying here would defeat the streamed
    row pipeline, whose whole point is that full-width dense blocks never
    exist.  ``sum_duplicates``/``sort_indices`` pin the canonical form so
    equality of two CSR matrices reduces to equality of their three arrays.
    """
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64, copy=False)
        csr.sum_duplicates()
        csr.sort_indices()
        return csr
    return np.atleast_2d(np.asarray(matrix, dtype=np.float64))


@dataclass
class LPModel:
    """An LP under construction.

    Variables are created with :meth:`add_variable` / :meth:`add_variables`
    and identified by integer index.  Constraints may be added either one at
    a time from :class:`LinearExpression` objects, or as dense blocks
    (matrix form), which is how the repair algorithms add the
    ``A_x (N(x) + J_x Δ) ≤ b_x`` rows.
    """

    _num_variables: int = 0
    _names: list[str] = field(default_factory=list)
    _lower: list[float] = field(default_factory=list)
    _upper: list[float] = field(default_factory=list)
    _objective: dict[int, float] = field(default_factory=dict)
    _blocks: list[_ConstraintBlock] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of variables added so far."""
        return self._num_variables

    def add_variable(
        self,
        name: str | None = None,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> int:
        """Add one variable and return its index."""
        if lower > upper:
            raise LPError(f"variable lower bound {lower} exceeds upper bound {upper}")
        index = self._num_variables
        self._names.append(name if name is not None else f"x{index}")
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._num_variables += 1
        return index

    def add_variables(
        self,
        count: int,
        name: str | None = None,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> np.ndarray:
        """Add ``count`` variables and return their indices as an array.

        The whole block is appended in one vectorized extend — repair LPs
        create tens of thousands of delta variables at once, so this must
        not fall back to per-variable :meth:`add_variable` calls.
        """
        if count < 0:
            raise LPError("count must be non-negative")
        if lower > upper:
            raise LPError(f"variable lower bound {lower} exceeds upper bound {upper}")
        base = name if name is not None else "x"
        start = self._num_variables
        self._names.extend(f"{base}[{offset}]" for offset in range(count))
        self._lower.extend([float(lower)] * count)
        self._upper.extend([float(upper)] * count)
        self._num_variables += count
        return np.arange(start, start + count, dtype=int)

    def variable_name(self, index: int) -> str:
        """Name of variable ``index``."""
        return self._names[index]

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_leq_block(self, matrix, rhs, columns=None) -> None:
        """Add constraints ``matrix @ x[columns] <= rhs``.

        ``columns`` defaults to all variables currently in the model, in
        which case ``matrix`` must have ``num_variables`` columns.  The
        block matrix may be a ``scipy.sparse`` matrix; it is stored as
        canonical CSR without ever being densified, which is what the
        chunked Jacobian stream relies on to keep blocks out of core.
        """
        matrix = _coerce_block_matrix(matrix)
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if columns is None:
            columns = np.arange(self._num_variables)
        columns = np.asarray(columns, dtype=int)
        self._check_block(matrix, rhs, columns)
        self._blocks.append(_ConstraintBlock(matrix, rhs, columns, equality=False))

    def add_eq_block(self, matrix, rhs, columns=None) -> None:
        """Add constraints ``matrix @ x[columns] == rhs``."""
        matrix = _coerce_block_matrix(matrix)
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if columns is None:
            columns = np.arange(self._num_variables)
        columns = np.asarray(columns, dtype=int)
        self._check_block(matrix, rhs, columns)
        self._blocks.append(_ConstraintBlock(matrix, rhs, columns, equality=True))

    def add_leq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression <= rhs``."""
        row, columns = self._expression_row(expression)
        self.add_leq_block(row[None, :], [rhs - expression.constant], columns)

    def add_geq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression >= rhs``."""
        self.add_leq(expression * -1.0, -float(rhs))

    def add_eq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression == rhs``."""
        row, columns = self._expression_row(expression)
        self.add_eq_block(row[None, :], [rhs - expression.constant], columns)

    def _expression_row(self, expression: LinearExpression):
        coefficients = expression.coefficients
        if not coefficients:
            raise LPError("constraint expression has no variables")
        columns = np.array(sorted(coefficients), dtype=int)
        row = np.array([coefficients[index] for index in columns], dtype=np.float64)
        return row, columns

    def _check_block(self, matrix: np.ndarray, rhs: np.ndarray, columns: np.ndarray) -> None:
        if matrix.ndim != 2:
            raise LPError("constraint matrix must be 2-D")
        if rhs.ndim != 1 or rhs.shape[0] != matrix.shape[0]:
            raise LPError("constraint rhs length must match the number of rows")
        if columns.ndim != 1 or columns.shape[0] != matrix.shape[1]:
            raise LPError("columns length must match the number of matrix columns")
        if columns.size and (columns.min() < 0 or columns.max() >= self._num_variables):
            raise LPError("constraint references an unknown variable index")
        if np.unique(columns).size != columns.size:
            # Duplicates would make the dense (last-write-wins) and sparse
            # (summing) assemblies disagree on the same model.
            raise LPError("constraint block columns must be unique")

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def set_objective_coefficient(self, index: int, coefficient: float) -> None:
        """Set the objective coefficient of variable ``index``."""
        if not 0 <= index < self._num_variables:
            raise LPError(f"unknown variable index {index}")
        if coefficient == 0.0:
            self._objective.pop(index, None)
        else:
            self._objective[index] = float(coefficient)

    def add_objective_term(self, index: int, coefficient: float) -> None:
        """Add ``coefficient`` to the objective coefficient of ``index``."""
        current = self._objective.get(index, 0.0)
        self.set_objective_coefficient(index, current + coefficient)

    def set_objective(self, expression: LinearExpression) -> None:
        """Replace the objective with the given linear expression."""
        self._objective = {}
        for index, coefficient in expression.coefficients.items():
            self.set_objective_coefficient(index, coefficient)

    # ------------------------------------------------------------------
    # Standard form assembly & solving
    # ------------------------------------------------------------------
    def standard_form(self, sparse: bool = False):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)``.

        With ``sparse=False`` (the default) the constraint matrices are dense
        ``(rows, num_variables)`` arrays — simple, but O(rows × vars) even
        when most entries are structural zeros.  With ``sparse=True`` they
        are ``scipy.sparse`` CSR matrices assembled directly from the narrow
        constraint blocks, never materializing full-width rows; this is the
        fast path used for large repair LPs, whose constraint matrices are
        mostly zero outside each block's column set.  ``c``, the right-hand
        sides, and ``bounds`` are dense in both modes.
        """
        n = self._num_variables
        c = np.zeros(n)
        for index, coefficient in self._objective.items():
            c[index] = coefficient
        bounds = np.column_stack([self._lower, self._upper]) if n else np.zeros((0, 2))

        if sparse:
            a_ub, b_ub = self._assemble_sparse(equality=False)
            a_eq, b_eq = self._assemble_sparse(equality=True)
            return c, a_ub, b_ub, a_eq, b_eq, bounds

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for block in self._blocks:
            narrow = block.matrix.toarray() if sp.issparse(block.matrix) else block.matrix
            dense = np.zeros((narrow.shape[0], n))
            dense[:, block.columns] = narrow
            if block.equality:
                eq_rows.append(dense)
                eq_rhs.append(block.rhs)
            else:
                ub_rows.append(dense)
                ub_rhs.append(block.rhs)

        a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.concatenate(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.concatenate(eq_rhs) if eq_rhs else np.zeros(0)
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def _assemble_sparse(self, equality: bool) -> tuple[sp.csr_matrix, np.ndarray]:
        """CSR matrix and rhs of all blocks with the given sense."""
        n = self._num_variables
        data_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        row_offset = 0
        for block in self._blocks:
            if block.equality is not equality:
                continue
            if sp.issparse(block.matrix):
                # Canonical CSR → COO keeps entries in row-major order,
                # exactly the order np.nonzero produces on the dense
                # equivalent — so sparse and dense blocks assemble the
                # same final CSR arrays byte for byte.
                coo = block.matrix.tocoo()
                data_parts.append(coo.data)
                row_parts.append(row_offset + coo.row)
                col_parts.append(block.columns[coo.col])
            else:
                local_rows, local_cols = np.nonzero(block.matrix)
                data_parts.append(block.matrix[local_rows, local_cols])
                row_parts.append(row_offset + local_rows)
                col_parts.append(block.columns[local_cols])
            rhs_parts.append(block.rhs)
            row_offset += block.matrix.shape[0]
        rhs = np.concatenate(rhs_parts) if rhs_parts else np.zeros(0)
        if not data_parts:
            return sp.csr_matrix((row_offset, n)), rhs
        matrix = sp.coo_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(row_parts), np.concatenate(col_parts)),
            ),
            shape=(row_offset, n),
        )
        return matrix.tocsr(), rhs

    @property
    def num_constraints(self) -> int:
        """Total number of constraint rows added so far."""
        return sum(block.matrix.shape[0] for block in self._blocks)

    def solve(self, backend: str | None = None, sparse: bool | None = None) -> LPSolution:
        """Solve the model with the named backend (default: ``"scipy"``).

        ``sparse`` selects the standard-form representation handed to the
        backend: ``True`` forces the CSR fast path, ``False`` forces dense,
        and ``None`` (the default) uses CSR exactly when the backend
        advertises ``supports_sparse`` — backends without sparse support
        (e.g. the educational simplex) densify lazily on entry either way.
        """
        from repro.lp.backends import get_backend

        solver = get_backend(backend)
        if sparse is None:
            sparse = solver.supports_sparse
        if self._num_variables == 0:
            return LPSolution(LPStatus.OPTIMAL, np.zeros(0), 0.0, "empty model")
        form = self.standard_form(sparse=sparse)
        return _observed_solve(solver, lambda: solver.solve(*form))

    def incremental_session(
        self,
        *,
        sparse: bool | None = None,
        tail_blocks: int = 0,
        backend: str | None = None,
    ) -> "LPSession":
        """Open an :class:`LPSession` over this model's current blocks.

        See :class:`LPSession` for the incremental-assembly contract;
        ``sparse=None`` resolves against the backend's ``supports_sparse``
        flag exactly like :meth:`solve`.
        """
        return LPSession(self, sparse=sparse, tail_blocks=tail_blocks, backend=backend)


def _widen_block_sparse(block: _ConstraintBlock, num_variables: int) -> sp.csr_matrix:
    """One narrow constraint block as a full-width CSR matrix."""
    if sp.issparse(block.matrix):
        matrix = block.matrix
        if matrix.shape[1] == num_variables and np.array_equal(
            block.columns, np.arange(num_variables)
        ):
            # Identity column map (the repair LPs' delta-variable prefix):
            # the narrow CSR *is* the widened CSR.  Sharing its arrays keeps
            # the streamed path zero-copy per appended chunk.
            return sp.csr_matrix(
                (matrix.data, matrix.indices, matrix.indptr),
                shape=(matrix.shape[0], num_variables),
            )
        coo = matrix.tocoo()
        return sp.coo_matrix(
            (coo.data, (coo.row, block.columns[coo.col])),
            shape=(matrix.shape[0], num_variables),
        ).tocsr()
    local_rows, local_cols = np.nonzero(block.matrix)
    return sp.coo_matrix(
        (block.matrix[local_rows, local_cols], (local_rows, block.columns[local_cols])),
        shape=(block.matrix.shape[0], num_variables),
    ).tocsr()


def _widen_block_dense(block: _ConstraintBlock, num_variables: int) -> np.ndarray:
    """One narrow constraint block as a full-width dense matrix."""
    narrow = block.matrix.toarray() if sp.issparse(block.matrix) else block.matrix
    wide = np.zeros((narrow.shape[0], num_variables))
    wide[:, block.columns] = narrow
    return wide


class LPSession:
    """An incremental solve session over a growing :class:`LPModel`.

    A CEGIS repair driver solves the *same* LP round after round, each time
    with a few more constraint rows (every round's LP is a superset of the
    last).  Re-running :meth:`LPModel.standard_form` each round walks every
    block again; a session instead assembles the standard form once, keeps
    the widened per-block matrices, and :meth:`append_rows` converts only
    the blocks added to the model since the previous call — so per-round
    assembly cost scales with the *new* rows, not the whole model.

    ``tail_blocks`` pins the last ``tail_blocks`` blocks present at session
    creation to the bottom of the inequality/equality matrices forever:
    rows appended later are inserted *above* them.  This exists for the
    repair LPs, whose norm-objective rows (``-t ≤ Δ_i ≤ t``) are added once
    after the initial constraint rows; pinning them last makes the session's
    standard form row-for-row identical to what a cold
    :meth:`LPModel.standard_form` over the same model would produce — which
    is what keeps incremental and cold solves byte-identical for a
    deterministic backend.

    Sessions do not support adding variables after creation
    (:meth:`append_rows` raises); the repair LPs fix their delta and
    auxiliary variables up front.
    """

    def __init__(
        self,
        model: LPModel,
        *,
        sparse: bool | None = None,
        tail_blocks: int = 0,
        backend: str | None = None,
    ) -> None:
        from repro.lp.backends import get_backend

        self.model = model
        self.backend_name = backend
        self._solver = get_backend(backend)
        self.sparse = self._solver.supports_sparse if sparse is None else bool(sparse)
        if not 0 <= tail_blocks <= len(model._blocks):
            raise LPError(
                f"tail_blocks is {tail_blocks}, model has {len(model._blocks)} blocks"
            )
        self._num_variables = model.num_variables
        # Widened per-block parts, in row order: head parts grow via
        # append_rows, tail parts are pinned to the bottom.
        self._ub_parts: list = []
        self._ub_rhs: list[np.ndarray] = []
        self._eq_parts: list = []
        self._eq_rhs: list[np.ndarray] = []
        self._ub_tail: list = []
        self._ub_tail_rhs: list[np.ndarray] = []
        self._eq_tail: list = []
        self._eq_tail_rhs: list[np.ndarray] = []
        self._consumed = 0
        self.rows_appended = 0
        self._cached_matrices: tuple | None = None
        head_count = len(model._blocks) - tail_blocks
        self._consume(model._blocks[:head_count], tail=False)
        self._consume(model._blocks[head_count:], tail=True)
        self._consumed = len(model._blocks)

    def _consume(self, blocks: list[_ConstraintBlock], tail: bool) -> int:
        rows = 0
        n = self._num_variables
        for block in blocks:
            widened = (
                _widen_block_sparse(block, n) if self.sparse else _widen_block_dense(block, n)
            )
            if block.equality:
                (self._eq_tail if tail else self._eq_parts).append(widened)
                (self._eq_tail_rhs if tail else self._eq_rhs).append(block.rhs)
            else:
                (self._ub_tail if tail else self._ub_parts).append(widened)
                (self._ub_tail_rhs if tail else self._ub_rhs).append(block.rhs)
            rows += block.matrix.shape[0]
        return rows

    def append_rows(self, stream=None) -> int:
        """Widen the blocks added to the model since the last call.

        With ``stream`` given — an iterator of ``(matrix, rhs, columns)``
        triples, where ``matrix`` may be dense or CSR — each item is added
        to the model and consumed into the session *immediately*, so only
        one chunk of the stream is in flight at a time.  This is the
        ingestion point for :class:`~repro.core.jacobian.JacobianChunkStream`:
        the model still records every block (cold re-assembly of the same
        model stays byte-identical), but no dense full-width intermediate
        ever exists.

        Returns the number of constraint rows appended.  Raises
        :class:`LPError` if variables were added after session creation —
        widened matrices from earlier rounds would be too narrow.
        """
        if self.model.num_variables != self._num_variables:
            raise LPError(
                "the model grew from "
                f"{self._num_variables} to {self.model.num_variables} variables; "
                "incremental sessions only support appending constraint rows"
            )
        rows = self._consume(self.model._blocks[self._consumed :], tail=False)
        self._consumed = len(self.model._blocks)
        if stream is not None:
            for matrix, rhs, columns in stream:
                self.model.add_leq_block(matrix, rhs, columns)
                if self.model.num_variables != self._num_variables:
                    raise LPError(
                        "the model grew variables while a row stream was "
                        "being consumed; incremental sessions only support "
                        "appending constraint rows"
                    )
                rows += self._consume(self.model._blocks[self._consumed :], tail=False)
                self._consumed = len(self.model._blocks)
        if rows:
            self.rows_appended += rows
            self._cached_matrices = None
        return rows

    @property
    def num_rows(self) -> int:
        """Constraint rows currently assembled (head plus pinned tail)."""
        return sum(int(rhs.shape[0]) for rhs in
                   (*self._ub_rhs, *self._ub_tail_rhs, *self._eq_rhs, *self._eq_tail_rhs))

    def _stack(self, parts: list, rhs_parts: list[np.ndarray]):
        n = self._num_variables
        if not parts:
            empty = sp.csr_matrix((0, n)) if self.sparse else np.zeros((0, n))
            return empty, np.zeros(0)
        stacker = sp.vstack if self.sparse else np.vstack
        matrix = stacker(parts) if len(parts) > 1 else parts[0]
        if self.sparse:
            matrix = matrix.tocsr()
        return matrix, np.concatenate(rhs_parts)

    def standard_form(self):
        """The assembled ``(c, A_ub, b_ub, A_eq, b_eq, bounds)``.

        The constraint matrices are cached between :meth:`append_rows`
        calls; ``c`` and ``bounds`` are rebuilt from the model each time
        (both are O(variables) and objective coefficients may legally change
        between solves).
        """
        if self.model.num_variables != self._num_variables:
            raise LPError(
                "the model grew variables after session creation; "
                "incremental sessions only support appending constraint rows"
            )
        if self._cached_matrices is None:
            self._cached_matrices = (
                self._stack(self._ub_parts + self._ub_tail, self._ub_rhs + self._ub_tail_rhs),
                self._stack(self._eq_parts + self._eq_tail, self._eq_rhs + self._eq_tail_rhs),
            )
        (a_ub, b_ub), (a_eq, b_eq) = self._cached_matrices
        n = self._num_variables
        c = np.zeros(n)
        for index, coefficient in self.model._objective.items():
            c[index] = coefficient
        bounds = (
            np.column_stack([self.model._lower[:n], self.model._upper[:n]])
            if n
            else np.zeros((0, 2))
        )
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def solve(self, warm_start: WarmStart | None = None) -> LPSolution:
        """Solve the current form, optionally warm-started.

        The returned solution carries a fresh ``warm_start`` handle (when
        the backend produces one) for the next, further-extended solve;
        handles from a different backend are dropped here rather than handed
        to a solver that cannot interpret them.
        """
        if self._num_variables == 0:
            return LPSolution(LPStatus.OPTIMAL, np.zeros(0), 0.0, "empty model")
        if warm_start is not None and not self._solver.accepts_handle(warm_start):
            warm_start = None
        form = self.standard_form()
        handle = warm_start
        return _observed_solve(
            self._solver, lambda: self._solver.solve(*form, warm_start=handle)
        )
