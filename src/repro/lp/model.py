"""LP modelling layer.

:class:`LPModel` collects variables, linear constraints, bounds, and a linear
objective, and hands a standard-form problem to one of the backends in
:mod:`repro.lp.backends`.  The repair algorithms use it through the helpers
in :mod:`repro.lp.norms`, which add the auxiliary variables needed for
ℓ1/ℓ∞ norm minimization.

Standard form passed to backends::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lb <= x <= ub        (entries may be ±inf)

Constraint blocks are stored narrow — each block keeps only the columns it
actually touches — and :meth:`LPModel.standard_form` widens them on demand.
The dense path materializes full ``(rows, num_variables)`` arrays, which is
O(rows × vars) memory regardless of sparsity; the sparse fast path
(``standard_form(sparse=True)``) assembles ``scipy.sparse`` CSR matrices
directly from the narrow blocks and is what the batched repair engine hands
to sparse-capable backends.  :meth:`LPModel.solve` picks the representation
automatically from the backend's ``supports_sparse`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import LPError
from repro.lp.expression import LinearExpression
from repro.lp.status import LPStatus


@dataclass
class LPSolution:
    """Result of solving an :class:`LPModel`.

    Attributes
    ----------
    status:
        Outcome of the solve.
    values:
        Dense variable assignment (``None`` unless ``status.is_optimal``).
    objective:
        Objective value at ``values`` (``None`` unless optimal).
    message:
        Backend-specific diagnostic text.
    """

    status: LPStatus
    values: np.ndarray | None = None
    objective: float | None = None
    message: str = ""

    def value_of(self, indices) -> np.ndarray:
        """Extract the assignment of a block of variables by index array."""
        if self.values is None:
            raise LPError("solution has no variable values (status: %s)" % self.status)
        return self.values[np.asarray(indices, dtype=int)]


@dataclass
class _ConstraintBlock:
    """A block of constraints ``matrix @ x[columns] (sense) rhs``."""

    matrix: np.ndarray
    rhs: np.ndarray
    columns: np.ndarray
    equality: bool = False


@dataclass
class LPModel:
    """An LP under construction.

    Variables are created with :meth:`add_variable` / :meth:`add_variables`
    and identified by integer index.  Constraints may be added either one at
    a time from :class:`LinearExpression` objects, or as dense blocks
    (matrix form), which is how the repair algorithms add the
    ``A_x (N(x) + J_x Δ) ≤ b_x`` rows.
    """

    _num_variables: int = 0
    _names: list[str] = field(default_factory=list)
    _lower: list[float] = field(default_factory=list)
    _upper: list[float] = field(default_factory=list)
    _objective: dict[int, float] = field(default_factory=dict)
    _blocks: list[_ConstraintBlock] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of variables added so far."""
        return self._num_variables

    def add_variable(
        self,
        name: str | None = None,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> int:
        """Add one variable and return its index."""
        if lower > upper:
            raise LPError(f"variable lower bound {lower} exceeds upper bound {upper}")
        index = self._num_variables
        self._names.append(name if name is not None else f"x{index}")
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._num_variables += 1
        return index

    def add_variables(
        self,
        count: int,
        name: str | None = None,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> np.ndarray:
        """Add ``count`` variables and return their indices as an array.

        The whole block is appended in one vectorized extend — repair LPs
        create tens of thousands of delta variables at once, so this must
        not fall back to per-variable :meth:`add_variable` calls.
        """
        if count < 0:
            raise LPError("count must be non-negative")
        if lower > upper:
            raise LPError(f"variable lower bound {lower} exceeds upper bound {upper}")
        base = name if name is not None else "x"
        start = self._num_variables
        self._names.extend(f"{base}[{offset}]" for offset in range(count))
        self._lower.extend([float(lower)] * count)
        self._upper.extend([float(upper)] * count)
        self._num_variables += count
        return np.arange(start, start + count, dtype=int)

    def variable_name(self, index: int) -> str:
        """Name of variable ``index``."""
        return self._names[index]

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_leq_block(self, matrix, rhs, columns=None) -> None:
        """Add constraints ``matrix @ x[columns] <= rhs``.

        ``columns`` defaults to all variables currently in the model, in
        which case ``matrix`` must have ``num_variables`` columns.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if columns is None:
            columns = np.arange(self._num_variables)
        columns = np.asarray(columns, dtype=int)
        self._check_block(matrix, rhs, columns)
        self._blocks.append(_ConstraintBlock(matrix, rhs, columns, equality=False))

    def add_eq_block(self, matrix, rhs, columns=None) -> None:
        """Add constraints ``matrix @ x[columns] == rhs``."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if columns is None:
            columns = np.arange(self._num_variables)
        columns = np.asarray(columns, dtype=int)
        self._check_block(matrix, rhs, columns)
        self._blocks.append(_ConstraintBlock(matrix, rhs, columns, equality=True))

    def add_leq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression <= rhs``."""
        row, columns = self._expression_row(expression)
        self.add_leq_block(row[None, :], [rhs - expression.constant], columns)

    def add_geq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression >= rhs``."""
        self.add_leq(expression * -1.0, -float(rhs))

    def add_eq(self, expression: LinearExpression, rhs: float) -> None:
        """Add a single constraint ``expression == rhs``."""
        row, columns = self._expression_row(expression)
        self.add_eq_block(row[None, :], [rhs - expression.constant], columns)

    def _expression_row(self, expression: LinearExpression):
        coefficients = expression.coefficients
        if not coefficients:
            raise LPError("constraint expression has no variables")
        columns = np.array(sorted(coefficients), dtype=int)
        row = np.array([coefficients[index] for index in columns], dtype=np.float64)
        return row, columns

    def _check_block(self, matrix: np.ndarray, rhs: np.ndarray, columns: np.ndarray) -> None:
        if matrix.ndim != 2:
            raise LPError("constraint matrix must be 2-D")
        if rhs.ndim != 1 or rhs.shape[0] != matrix.shape[0]:
            raise LPError("constraint rhs length must match the number of rows")
        if columns.ndim != 1 or columns.shape[0] != matrix.shape[1]:
            raise LPError("columns length must match the number of matrix columns")
        if columns.size and (columns.min() < 0 or columns.max() >= self._num_variables):
            raise LPError("constraint references an unknown variable index")
        if np.unique(columns).size != columns.size:
            # Duplicates would make the dense (last-write-wins) and sparse
            # (summing) assemblies disagree on the same model.
            raise LPError("constraint block columns must be unique")

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def set_objective_coefficient(self, index: int, coefficient: float) -> None:
        """Set the objective coefficient of variable ``index``."""
        if not 0 <= index < self._num_variables:
            raise LPError(f"unknown variable index {index}")
        if coefficient == 0.0:
            self._objective.pop(index, None)
        else:
            self._objective[index] = float(coefficient)

    def add_objective_term(self, index: int, coefficient: float) -> None:
        """Add ``coefficient`` to the objective coefficient of ``index``."""
        current = self._objective.get(index, 0.0)
        self.set_objective_coefficient(index, current + coefficient)

    def set_objective(self, expression: LinearExpression) -> None:
        """Replace the objective with the given linear expression."""
        self._objective = {}
        for index, coefficient in expression.coefficients.items():
            self.set_objective_coefficient(index, coefficient)

    # ------------------------------------------------------------------
    # Standard form assembly & solving
    # ------------------------------------------------------------------
    def standard_form(self, sparse: bool = False):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)``.

        With ``sparse=False`` (the default) the constraint matrices are dense
        ``(rows, num_variables)`` arrays — simple, but O(rows × vars) even
        when most entries are structural zeros.  With ``sparse=True`` they
        are ``scipy.sparse`` CSR matrices assembled directly from the narrow
        constraint blocks, never materializing full-width rows; this is the
        fast path used for large repair LPs, whose constraint matrices are
        mostly zero outside each block's column set.  ``c``, the right-hand
        sides, and ``bounds`` are dense in both modes.
        """
        n = self._num_variables
        c = np.zeros(n)
        for index, coefficient in self._objective.items():
            c[index] = coefficient
        bounds = np.column_stack([self._lower, self._upper]) if n else np.zeros((0, 2))

        if sparse:
            a_ub, b_ub = self._assemble_sparse(equality=False)
            a_eq, b_eq = self._assemble_sparse(equality=True)
            return c, a_ub, b_ub, a_eq, b_eq, bounds

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for block in self._blocks:
            dense = np.zeros((block.matrix.shape[0], n))
            dense[:, block.columns] = block.matrix
            if block.equality:
                eq_rows.append(dense)
                eq_rhs.append(block.rhs)
            else:
                ub_rows.append(dense)
                ub_rhs.append(block.rhs)

        a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.concatenate(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.concatenate(eq_rhs) if eq_rhs else np.zeros(0)
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def _assemble_sparse(self, equality: bool) -> tuple[sp.csr_matrix, np.ndarray]:
        """CSR matrix and rhs of all blocks with the given sense."""
        n = self._num_variables
        data_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        row_offset = 0
        for block in self._blocks:
            if block.equality is not equality:
                continue
            local_rows, local_cols = np.nonzero(block.matrix)
            data_parts.append(block.matrix[local_rows, local_cols])
            row_parts.append(row_offset + local_rows)
            col_parts.append(block.columns[local_cols])
            rhs_parts.append(block.rhs)
            row_offset += block.matrix.shape[0]
        rhs = np.concatenate(rhs_parts) if rhs_parts else np.zeros(0)
        if not data_parts:
            return sp.csr_matrix((row_offset, n)), rhs
        matrix = sp.coo_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(row_parts), np.concatenate(col_parts)),
            ),
            shape=(row_offset, n),
        )
        return matrix.tocsr(), rhs

    @property
    def num_constraints(self) -> int:
        """Total number of constraint rows added so far."""
        return sum(block.matrix.shape[0] for block in self._blocks)

    def solve(self, backend: str | None = None, sparse: bool | None = None) -> LPSolution:
        """Solve the model with the named backend (default: ``"scipy"``).

        ``sparse`` selects the standard-form representation handed to the
        backend: ``True`` forces the CSR fast path, ``False`` forces dense,
        and ``None`` (the default) uses CSR exactly when the backend
        advertises ``supports_sparse`` — backends without sparse support
        (e.g. the educational simplex) densify lazily on entry either way.
        """
        from repro.lp.backends import get_backend

        solver = get_backend(backend)
        if sparse is None:
            sparse = solver.supports_sparse
        if self._num_variables == 0:
            return LPSolution(LPStatus.OPTIMAL, np.zeros(0), 0.0, "empty model")
        return solver.solve(*self.standard_form(sparse=sparse))
