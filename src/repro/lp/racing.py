"""Deterministic LP solver racing over a portfolio of backends.

``RacingBackend`` launches the same standard form on 2–3 member backends
concurrently and exposes the portfolio as one ordinary
:class:`~repro.lp.backends.base.LPBackend`, so every existing call site —
``LPModel.solve``, incremental :class:`~repro.lp.model.LPSession` rounds,
the repair driver's ``backend=`` knob — can race by spelling the backend
name ``"race:highs_native,scipy"``.

Determinism contract
--------------------
Racing must never change a repair's bytes.  The first racer to return a
terminal status is the race's *wall-clock winner* (telemetry only); the
**returned** solution is always re-normalized to the answer of the
most-preferred member that completed without raising — the first name in
the spec.  Concretely:

* while the preferred backend is healthy, the race waits for it and
  returns its :class:`~repro.lp.model.LPSolution` verbatim, so a
  ``race:`` run is byte-identical to a solo preferred-backend run at any
  worker count and in any member order (each order is pinned to *its own*
  preferred member — that is the ordered-preference tie-break);
* when the winner's status disagrees with the preferred answer the
  preferred answer still wins and the disagreement is counted
  (``repro_lp_race_disagreements_total``) — a racing portfolio is a
  performance and robustness device, never a second source of truth;
* a racer that raises — or returns an :attr:`~repro.lp.status.LPStatus.ERROR`
  solution, the in-band spelling of the same failure — is counted
  (``repro_lp_race_failures_total``) and preference falls to the next
  member; when *every* member fails, the race returns the most-preferred
  diagnostic ``ERROR`` solution if one exists and raises only when every
  member raised.

Once the returned answer is fixed, the remaining racers are cancelled:
pending ones before they start, running ones cooperatively via a per-run
:class:`threading.Event` installed as the ``cancel_event`` attribute of any
member that exposes one.  The event is installed *inside* the member's
serialized worker (see below), so installing a fresh event can never revoke
the set event a still-running previous solve is watching.

Racers run on **threads**, not the engine's process pool: scipy/HiGHS and
``highspy`` both release the GIL inside the solver, the standard form
(large CSR matrices) would otherwise be pickled per member per round, and
thread spawn cost is microseconds against millisecond-scale solves.  Each
member owns a **single-thread executor for the portfolio's lifetime**, so
one member's solves are strictly serialized across rounds: a loser that is
still running when the race returns can never overlap the next round's
solve on the same (possibly stateful — ``highs_native`` retains its model)
backend instance; the next solve simply queues behind it.

Telemetry (all per-``backend`` label, published only when ``repro.obs`` is
enabled): ``repro_lp_race_wins_total``, ``repro_lp_race_losses_total``,
``repro_lp_race_cancelled_total``, ``repro_lp_race_failures_total``,
``repro_lp_race_disagreements_total``, and the per-member solve-time
histogram ``repro_lp_race_solve_seconds``.
"""

from __future__ import annotations

import concurrent.futures
import threading

import repro.obs as obs
from repro.exceptions import LPError
from repro.lp.backends.base import LPBackend
from repro.lp.model import LPSolution, WarmStart
from repro.lp.status import LPStatus
from repro.utils.timing import wall_cpu_now

#: Prefix that selects racing in a backend-name spec.
RACE_PREFIX = "race:"


def parse_race_spec(spec: str) -> list[str]:
    """Member backend names of a ``"race:a,b[,c]"`` spec, in preference order.

    Raises :class:`LPError` on an empty, single-member, or duplicated list —
    a race of one is a typo, not a portfolio.
    """
    body = spec[len(RACE_PREFIX):] if spec.startswith(RACE_PREFIX) else spec
    names = [name.strip() for name in body.split(",") if name.strip()]
    if len(names) < 2:
        raise LPError(
            f"racing spec {spec!r} needs at least two comma-separated backends"
        )
    if len(names) != len(set(names)):
        raise LPError(f"racing spec {spec!r} lists a backend twice")
    return names


class RacingBackend(LPBackend):
    """Race member backends on each solve; return the preferred answer.

    ``backends`` are instantiated members in preference order (first =
    preferred).  The portfolio's sparse/exactness capabilities mirror the
    preferred member, because the returned bytes are the preferred
    member's: ``LPModel.solve`` must hand the race the same standard-form
    representation a solo preferred run would see.
    """

    def __init__(self, backends: list[LPBackend]) -> None:
        if len(backends) < 2:
            raise LPError("a racing backend needs at least two members")
        self.backends = list(backends)
        self.name = RACE_PREFIX + ",".join(backend.name for backend in self.backends)
        # One single-thread executor per member, for the portfolio's
        # lifetime: a member's solves are serialized across rounds, so an
        # abandoned loser can never run concurrently with the next round's
        # solve on the same (stateful) backend instance.  Threads spawn
        # lazily on first submit, so idle portfolios (capability probes)
        # cost nothing.
        self._executors = [
            concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"lp-race-{index}"
            )
            for index in range(len(self.backends))
        ]

    @property
    def preferred(self) -> LPBackend:
        """The member whose answer the race returns (first in the spec)."""
        return self.backends[0]

    @property
    def supports_sparse(self) -> bool:  # type: ignore[override]
        return self.preferred.supports_sparse

    @property
    def warm_start_is_exact(self) -> bool:
        return self.preferred.warm_start_is_exact

    def accepts_handle(self, warm_start: WarmStart) -> bool:
        """Accept any member's handles — each member re-checks its own."""
        return any(backend.accepts_handle(warm_start) for backend in self.backends)

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=None) -> LPSolution:
        form = (c, a_ub, b_ub, a_eq, b_eq, bounds)
        cancel_events: dict[int, threading.Event] = {
            index: threading.Event()
            for index, backend in enumerate(self.backends)
            if hasattr(backend, "cancel_event")
        }
        futures = []
        for index, backend in enumerate(self.backends):
            handle = warm_start if warm_start is not None and backend.accepts_handle(
                warm_start
            ) else None
            futures.append(
                self._executors[index].submit(
                    self._run_member, backend, form, handle, cancel_events.get(index)
                )
            )
        try:
            return self._collect(futures)
        finally:
            for future in futures:
                future.cancel()
            for event in cancel_events.values():
                event.set()

    # ------------------------------------------------------------------
    def _run_member(
        self, backend: LPBackend, form, handle, cancel_event
    ) -> tuple[LPSolution, float]:
        # Installing the per-run event here, on the member's serialized
        # thread, guarantees no earlier solve of this member is still
        # watching the attribute when it is replaced; if the race already
        # finished, the event arrives pre-set and the solve cancels at once.
        if cancel_event is not None:
            backend.cancel_event = cancel_event
        start, _ = wall_cpu_now()
        solution = backend.solve(*form, warm_start=handle)
        return solution, wall_cpu_now()[0] - start

    def _collect(self, futures) -> LPSolution:
        """Wait until the best still-possible preference has an answer."""
        outcomes: dict[int, LPSolution | None] = {}  # None = member failed
        error_solutions: dict[int, LPSolution] = {}  # failed with diagnostics
        winner: int | None = None
        pending = set(futures)
        chosen: int | None = None
        while pending:
            done, pending = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in sorted(done, key=futures.index):
                index = futures.index(future)
                try:
                    solution, elapsed = future.result()
                except Exception as error:
                    outcomes[index] = None
                    self._count("repro_lp_race_failures_total", index)
                    self._last_error = error
                    continue
                self._observe_time(index, elapsed)
                if solution.status is LPStatus.ERROR:
                    # An ERROR solution is a member failure spelled in-band
                    # (the native backend converts binding crashes into
                    # ERROR rather than raising): preference must fall
                    # through to the next healthy member, not return it.
                    outcomes[index] = None
                    error_solutions[index] = solution
                    self._count("repro_lp_race_failures_total", index)
                    continue
                outcomes[index] = solution
                if winner is None:
                    winner = index
                    self._count("repro_lp_race_wins_total", index)
                else:
                    self._count("repro_lp_race_losses_total", index)
            chosen = self._resolved_preference(outcomes)
            if chosen is not None:
                break
        if chosen is None:
            chosen = self._resolved_preference(outcomes)
        for index in range(len(self.backends)):
            if index not in outcomes and index != chosen:
                self._count("repro_lp_race_cancelled_total", index)
        if chosen is None:
            # Every member failed.  Prefer returning a diagnostic ERROR
            # solution (most-preferred member's) over raising: the caller
            # sees the same status a solo run of that member would report.
            for index in range(len(self.backends)):
                if index in error_solutions:
                    return error_solutions[index]
            raise LPError(
                f"every racing backend failed ({self.name}); "
                f"last error: {getattr(self, '_last_error', None)!r}"
            )
        solution = outcomes[chosen]
        if (
            winner is not None
            and winner != chosen
            and outcomes.get(winner) is not None
            and outcomes[winner].status is not solution.status
        ):
            self._count("repro_lp_race_disagreements_total", chosen)
        return solution

    def _resolved_preference(self, outcomes: dict) -> int | None:
        """Most-preferred member with a solution, if every member ahead of
        it has already resolved (to a failure).  ``None`` = keep waiting."""
        for index in range(len(self.backends)):
            if index not in outcomes:
                return None  # a more-preferred racer is still running
            if outcomes[index] is not None:
                return index
        return None  # everyone resolved, everyone failed

    def _count(self, family: str, index: int) -> None:
        if obs.enabled():
            obs.counter(
                family,
                "LP racing outcomes, by member backend.",
                labels=("backend",),
            ).inc(backend=self.backends[index].name)

    def _observe_time(self, index: int, elapsed: float) -> None:
        if obs.enabled():
            obs.histogram(
                "repro_lp_race_solve_seconds",
                "Per-member wall-clock seconds inside LP races.",
                labels=("backend",),
            ).observe(elapsed, backend=self.backends[index].name)
