"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on machines without the ``wheel``
package (``python setup.py develop``), e.g. fully offline environments.
"""

from setuptools import setup

setup()
